"""Incremental violation detection under sparse cell deltas.

The Shapley hot path evaluates thousands of perturbed instances of one dirty
table, and every instance reaches the repair algorithms, which re-detect
denial-constraint violations from scratch — full index rebuilds and full pair
scans per instance.  This module replaces that with delta maintenance in the
style of incremental view maintenance: violations of a perturbed instance are
derived from the *base* table's violations by

1. **retract** — drop every base violation involving a row whose cells (on
   attributes the constraint mentions) were touched by the delta;
2. **re-index** — move only the touched row ids between the groups of a
   persistent per-constraint equality index
   (:meth:`~repro.engine.index.MultiColumnIndex.apply_delta` /
   ``revert_delta``);
3. **re-check** — test only the touched rows against their (updated) index
   groups, using a residual check that skips the equality predicates the
   index already guarantees.

Two-tuple constraints without an equality predicate fall back to the full
:func:`~repro.constraints.violations.find_violations` rescan on the view.

:class:`IncrementalViolationDetector` holds the per-base-snapshot state (base
violations per constraint, persistent indexes, compiled residual checks);
:func:`detector_for` caches one detector per base table, invalidated by the
table's mutation :attr:`~repro.dataset.table.Table.version`.  The detector is
guaranteed to produce exactly the multiset of violations the reference
full-rescan path produces — the property-based test-suite and
``benchmarks/bench_incremental_vs_full.py`` cross-check this.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.constraints.dc import DenialConstraint
from repro.constraints.predicates import Operator, Predicate, TUPLE_1
from repro.constraints.violations import (
    Violation,
    ViolationSet,
    find_all_violations,
    find_violations,
    lazy_row_reader,
)
from repro.dataset.table import CellRef, PerturbationView, Table
from repro.engine.index import MultiColumnIndex
from repro.engine.storage import is_null

__all__ = [
    "IncrementalViolationDetector",
    "detector_for",
    "find_violations_auto",
    "find_all_violations_auto",
    "find_all_violations_fast",
]

#: Equivalence-class marker for null cells in ``!=`` partitioning: all nulls
#: form one class (``null != null`` is unsatisfied, ``null != value`` holds).
_NULL_CLASS = object()


def _is_ne_join(predicate: Predicate) -> bool:
    """True for ``t1.A != t2.A`` style predicates (class-partitionable)."""
    return (
        predicate.op is Operator.NE
        and not predicate.left.is_constant
        and not predicate.right.is_constant
        and predicate.left.tuple_name != predicate.right.tuple_name
        and predicate.left.attribute == predicate.right.attribute
    )


def _compile_predicates(predicates: Sequence[Predicate]):
    """Compile predicates into one ``check(row1, row2) -> bool`` closure.

    Equivalent to ``all(p.evaluate(row1, row2) for p in predicates)`` but
    without building a tuple-assignment mapping per predicate per pair, which
    is most of the reference path's per-pair cost.
    """
    steps = []
    for predicate in predicates:
        left, right = predicate.left, predicate.right
        steps.append((
            predicate.op.evaluate,
            left.is_constant, left.tuple_name == TUPLE_1, left.attribute, left.constant,
            right.is_constant, right.tuple_name == TUPLE_1, right.attribute, right.constant,
        ))

    def check(row1: Mapping[str, Any], row2: Mapping[str, Any]) -> bool:
        for (op_evaluate,
             left_const, left_first, left_attr, left_value,
             right_const, right_first, right_attr, right_value) in steps:
            left = left_value if left_const else (row1 if left_first else row2)[left_attr]
            right = right_value if right_const else (row1 if right_first else row2)[right_attr]
            if not op_evaluate(left, right):
                return False
        return True

    return check


class _ConstraintPlan:
    """Static evaluation plan for one constraint (shape analysis, compiled once)."""

    __slots__ = ("constraint", "mentioned", "kind", "eq_attrs", "residual_check",
                 "single_ne_attr")

    def __init__(self, constraint: DenialConstraint):
        self.constraint = constraint
        self.mentioned = frozenset(constraint.attributes())
        self.eq_attrs: tuple[str, ...] = ()
        self.residual_check = None
        self.single_ne_attr: str | None = None
        if constraint.is_single_tuple:
            self.kind = "single"
            self.residual_check = _compile_predicates(constraint.predicates)
            return
        eq_attrs = constraint.equality_attributes()
        if not eq_attrs:
            self.kind = "pairs"  # no hash partition possible: full-rescan fallback
            return
        self.kind = "eq"
        self.eq_attrs = eq_attrs
        residual = [p for p in constraint.predicates if not p.is_equality_join]
        self.residual_check = _compile_predicates(residual)
        if len(residual) == 1 and _is_ne_join(residual[0]):
            # the FD shape (eq-join + one same-attribute !=): pairs violate
            # exactly when their null-aware equivalence classes differ, no
            # predicate machinery needed per pair
            self.single_ne_attr = residual[0].left.attribute


class _ConstraintState:
    """Per-(base snapshot, constraint) incremental state."""

    __slots__ = ("plan", "index", "base_violations")

    def __init__(self, plan: _ConstraintPlan, index: MultiColumnIndex | None,
                 base_violations: list[Violation]):
        self.plan = plan
        self.index = index
        self.base_violations = base_violations


class IncrementalViolationDetector:
    """Delta-maintains denial-constraint violations over one base snapshot.

    Parameters
    ----------
    table:
        The base table (a plain :class:`~repro.dataset.table.Table`, usually
        the dirty table).  Per-constraint base violations are computed with
        the reference full-rescan path, once, lazily.
    constraints:
        Optional constraints to pre-build state for; any constraint seen later
        through :meth:`violations_for_view` is planned on first use.
    """

    def __init__(self, table: Table, constraints: Iterable[DenialConstraint] = ()):
        self.table = table
        self.base_version = table.version
        self._states: dict[DenialConstraint, _ConstraintState] = {}
        self._indexes: dict[tuple[str, ...], MultiColumnIndex] = {}
        self._columns: dict[str, Any] = {}  # base column arrays, fetched once
        for constraint in constraints:
            self._state(constraint)

    # -- state construction ------------------------------------------------------

    def _column(self, attribute: str):
        column = self._columns.get(attribute)
        if column is None:
            column = self._columns[attribute] = self.table.store.column(attribute)
        return column

    def _index_for(self, eq_attrs: tuple[str, ...]) -> MultiColumnIndex:
        index = self._indexes.get(eq_attrs)
        if index is None:
            index = self._indexes[eq_attrs] = MultiColumnIndex(self.table.store, eq_attrs)
        return index

    def _state(self, constraint: DenialConstraint) -> _ConstraintState:
        state = self._states.get(constraint)
        if state is None:
            plan = _ConstraintPlan(constraint)
            index = self._index_for(plan.eq_attrs) if plan.kind == "eq" else None
            base_violations = list(find_violations(self.table, constraint))
            state = self._states[constraint] = _ConstraintState(plan, index, base_violations)
        return state

    # -- public queries ----------------------------------------------------------

    def base_violations(self, constraints: Sequence[DenialConstraint]) -> ViolationSet:
        """Violations of the unperturbed base snapshot (cached per constraint)."""
        result = ViolationSet()
        for constraint in constraints:
            for violation in self._state(constraint).base_violations:
                result.add(violation)
        return result

    def violations_for_delta(self, delta: Mapping[CellRef, Any],
                             constraints: Sequence[DenialConstraint]) -> ViolationSet:
        """Violations of the base perturbed by ``delta`` (convenience wrapper)."""
        return self.violations_for_view(self.table.perturbed(delta), constraints)

    def violations_for_view(self, view: PerturbationView,
                            constraints: Sequence[DenialConstraint]) -> ViolationSet:
        """Violations of ``view`` — retract + re-check touched rows only.

        Produces exactly the multiset :func:`find_all_violations` would on a
        materialised copy of the view.  Falls back to the full rescan when the
        view is not rooted on this detector's base snapshot.
        """
        if view.base is not self.table or self.base_version != self.table.version:
            return find_all_violations(view, constraints)
        # the delta grouped per column — the overlay's own cached structure,
        # no per-cell objects are built
        delta_columns = view.delta_by_column()
        result = ViolationSet()
        if not delta_columns:
            for constraint in constraints:
                for violation in self._state(constraint).base_violations:
                    result.add(violation)
            return result

        for constraint in constraints:
            state = self._state(constraint)
            plan = state.plan
            touched: set[int] = set()
            for attribute in plan.mentioned:
                overrides = delta_columns.get(attribute)
                if overrides:
                    touched.update(overrides)
            if not touched:
                for violation in state.base_violations:
                    result.add(violation)
                continue
            if plan.kind == "single":
                check = plan.residual_check
                for violation in state.base_violations:
                    if violation.rows[0] not in touched:
                        result.add(violation)
                for row_id in sorted(touched):
                    row = view.row(row_id)
                    if check(row, row):
                        result.add(Violation(constraint, (row_id,)))
                continue
            if plan.kind == "pairs":
                # no equality predicate to partition on: full rescan of this
                # constraint on the view
                for violation in find_violations(view, constraint):
                    result.add(violation)
                continue
            for violation in state.base_violations:
                rows = violation.rows
                if rows[0] in touched or rows[1] in touched:
                    continue
                result.add(violation)
            self._recheck_equality(view, state, touched, delta_columns, result)
        return result

    # -- the equality-partition re-check ------------------------------------------

    def _recheck_equality(self, view: PerturbationView, state: _ConstraintState,
                          touched: set[int],
                          delta_columns: Mapping[str, Mapping[int, Any]],
                          result: ViolationSet) -> None:
        plan = state.plan
        index = state.index
        eq_attrs = plan.eq_attrs
        constraint = plan.constraint

        # equality-key columns: base arrays plus the view's per-column overrides
        eq_columns = [self._column(attribute) for attribute in eq_attrs]
        eq_overrides = [delta_columns.get(attribute) for attribute in eq_attrs]

        if len(eq_attrs) == 1:
            only_column, only_overrides = eq_columns[0], eq_overrides[0]

            def view_key_of(row_id: int) -> tuple | None:
                if only_overrides is not None and row_id in only_overrides:
                    value = only_overrides[row_id]
                else:
                    value = only_column[row_id]
                return None if is_null(value) else (value,)
        else:
            def view_key_of(row_id: int) -> tuple | None:
                """The row's equality key under the view (None on a null component)."""
                key = []
                for column, overrides in zip(eq_columns, eq_overrides):
                    if overrides is not None and row_id in overrides:
                        value = overrides[row_id]
                    else:
                        value = column[row_id]
                    if is_null(value):
                        return None
                    key.append(value)
                return tuple(key)

        # rows whose key may have moved: only those with an overridden eq cell.
        # Base keys are O(1) — the index retained them from build time.
        key_changed: set[int] = set()
        for overrides in eq_overrides:
            if overrides:
                key_changed.update(overrides)
        view_keys: dict[int, tuple | None] = {}
        index_changes: dict[int, tuple[tuple | None, tuple | None]] = {}
        for row_id in key_changed:
            old_key = index.build_key_of(row_id)
            new_key = view_keys[row_id] = view_key_of(row_id)
            if old_key != new_key:
                index_changes[row_id] = (old_key, new_key)

        ne_attr = plan.single_ne_attr
        if ne_attr is not None:
            ne_column = self._column(ne_attr)
            ne_overrides = delta_columns.get(ne_attr)

            def class_of(row_id: int):
                if ne_overrides is not None and row_id in ne_overrides:
                    value = ne_overrides[row_id]
                else:
                    value = ne_column[row_id]
                return _NULL_CLASS if is_null(value) else value

        if index_changes:
            index.apply_delta(index_changes)
        try:
            row_of = lazy_row_reader(view)
            groups = index._groups  # read-only peek: skip the defensive copies

            for row_i in sorted(touched):
                if row_i in view_keys:
                    key = view_keys[row_i]
                else:
                    key = index.build_key_of(row_i)  # no eq cell touched
                if key is None:
                    continue  # a null component can never satisfy the eq-join
                partners = groups.get(key)
                if partners is None or len(partners) <= 1:
                    continue
                if ne_attr is not None:
                    class_i = class_of(row_i)
                    for row_j in partners:
                        if row_j == row_i or (row_j in touched and row_j < row_i):
                            continue  # touched pairs are handled by the lower id
                        if class_i != class_of(row_j):
                            result.add(Violation(constraint, (row_i, row_j)))
                            result.add(Violation(constraint, (row_j, row_i)))
                else:
                    check = plan.residual_check
                    row_data_i = row_of(row_i)
                    for row_j in partners:
                        if row_j == row_i or (row_j in touched and row_j < row_i):
                            continue
                        row_data_j = row_of(row_j)
                        if check(row_data_i, row_data_j):
                            result.add(Violation(constraint, (row_i, row_j)))
                        if check(row_data_j, row_data_i):
                            result.add(Violation(constraint, (row_j, row_i)))
        finally:
            if index_changes:
                index.revert_delta(index_changes)


# -- detector registry and dispatch helpers ---------------------------------------


def detector_for(table: Table) -> IncrementalViolationDetector:
    """The (cached) detector for a base table snapshot.

    One detector is attached per table instance and rebuilt whenever the
    table's mutation version moves, so callers never see stale base state.
    """
    detector = getattr(table, "_incremental_detector", None)
    if detector is None or detector.base_version != table.version:
        detector = IncrementalViolationDetector(table)
        table._incremental_detector = detector
    return detector


def find_all_violations_auto(table: Table,
                             constraints: Sequence[DenialConstraint]) -> ViolationSet:
    """Incremental detection for views, reference full rescan for plain tables.

    This is the dispatch the repair algorithms call on their working snapshot:
    a :class:`PerturbationView` (the Shapley hot path) is evaluated by delta
    maintenance against its base, everything else takes the reference path.
    """
    if isinstance(table, PerturbationView):
        return detector_for(table.base).violations_for_view(table, list(constraints))
    return find_all_violations(table, constraints)


def find_violations_auto(table: Table, constraint: DenialConstraint) -> list[Violation]:
    """Single-constraint variant of :func:`find_all_violations_auto`."""
    if isinstance(table, PerturbationView):
        return list(detector_for(table.base).violations_for_view(table, [constraint]))
    return find_violations(table, constraint)


def find_all_violations_fast(table: Table,
                             constraints: Sequence[DenialConstraint]) -> ViolationSet:
    """Like :func:`find_all_violations_auto`, but plain tables also go through
    the detector (cached per mutation version).

    Used by the greedy repairer, whose inner loop re-detects on the same
    snapshot for every candidate re-assignment: the snapshot's violations are
    computed once per version and each candidate is evaluated as a one-cell
    delta on top.
    """
    if isinstance(table, PerturbationView):
        return detector_for(table.base).violations_for_view(table, list(constraints))
    return detector_for(table).base_violations(list(constraints))
