"""Incremental violation detection under sparse cell deltas.

The Shapley hot path evaluates thousands of perturbed instances of one dirty
table, and every instance reaches the repair algorithms, which re-detect
denial-constraint violations from scratch — full index rebuilds and full pair
scans per instance.  This module replaces that with delta maintenance in the
style of incremental view maintenance: violations of a perturbed instance are
derived from the *base* table's violations by

1. **retract** — drop every base violation involving a row whose cells (on
   attributes the constraint mentions) were touched by the delta;
2. **re-index** — move only the touched row ids between the groups of a
   persistent per-constraint equality index
   (:meth:`~repro.engine.index.MultiColumnIndex.apply_delta` /
   ``revert_delta``);
3. **re-check** — test only the touched rows against their (updated) index
   groups, using a residual check that skips the equality predicates the
   index already guarantees.

Two-tuple constraints without an equality predicate fall back to the full
:func:`~repro.constraints.violations.find_violations` rescan on the view.

:class:`IncrementalViolationDetector` holds the per-base-snapshot state (base
violations per constraint, persistent indexes, compiled residual checks);
:func:`detector_for` caches one detector per base table, invalidated by the
table's mutation :attr:`~repro.dataset.table.Table.version`.  The detector is
guaranteed to produce exactly the multiset of violations the reference
full-rescan path produces — the property-based test-suite and
``benchmarks/bench_incremental_vs_full.py`` cross-check this.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.constraints.dc import DenialConstraint
from repro.constraints.predicates import Operator, Predicate, TUPLE_1
from repro.constraints.violations import (
    Violation,
    ViolationSet,
    find_all_violations,
    find_violations,
    lazy_row_reader,
)
from repro.dataset.table import CellRef, PerturbationView, Table
from repro.engine.index import MultiColumnIndex
from repro.engine.storage import is_null, values_differ
from repro.observability import trace as otrace

__all__ = [
    "IncrementalViolationDetector",
    "RepairWalk",
    "detector_for",
    "repair_walk_for",
    "find_violations_auto",
    "find_all_violations_auto",
    "find_all_violations_fast",
]

#: Equivalence-class marker for null cells in ``!=`` partitioning: all nulls
#: form one class (``null != null`` is unsatisfied, ``null != value`` holds).
_NULL_CLASS = object()


# -- vectorised (dictionary-encoded) key building ----------------------------------
#
# The vectorised engine paths evaluate equality keys over int32 code arrays
# from the base table's append-only dictionaries: per view, each equality
# column is the base's encoded column plus a sparse code-space delta, the
# per-column codes are packed into one int64 per row, and the group structure
# falls out of one ``np.unique`` pass instead of a per-row Python loop.  The
# decoded group keys are plain value tuples, so vectorised-built state is
# fully interoperable with the object-path maintenance that runs on top.


def _unpack_key(packed_value: int, multipliers: Sequence[int],
                decode_tables: Sequence[list]) -> tuple:
    """Decode one packed key back into its value tuple."""
    parts: list = [None] * len(decode_tables)
    for j in range(len(decode_tables) - 1, 0, -1):
        packed_value, code = divmod(packed_value, multipliers[j])
        parts[j] = decode_tables[j][code]
    parts[0] = decode_tables[0][packed_value]
    return tuple(parts)


def _groups_from_packed(packed, valid, multipliers: Sequence[int],
                        decode_tables: Sequence[list],
                        overridden: Iterable[int]):
    """Group rows by packed key — the vectorised twin of the walk-index build.

    Returns ``(groups, keys)`` exactly as the object path would produce them:
    group keys are decoded value tuples inserted in first-appearance order,
    row lists ascend, and ``keys`` records the (possibly ``None``) key of
    every row whose equality cells the view overrides.
    """
    groups: dict[tuple, list[int]] = {}
    valid_rows = np.nonzero(valid)[0]
    if valid_rows.size:
        unique_vals, first_idx, inverse = np.unique(
            packed[valid_rows], return_index=True, return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        counts = np.bincount(inverse, minlength=len(unique_vals))
        starts = np.concatenate(([0], np.cumsum(counts[:-1])))
        sorted_rows = valid_rows[order]
        for u in np.argsort(first_idx, kind="stable"):
            key = _unpack_key(int(unique_vals[u]), multipliers, decode_tables)
            groups[key] = sorted_rows[starts[u]:starts[u] + counts[u]].tolist()
    keys: dict[int, tuple | None] = {}
    for row_id in overridden:
        keys[row_id] = (
            _unpack_key(int(packed[row_id]), multipliers, decode_tables)
            if valid[row_id] else None
        )
    return groups, keys


def _is_ne_join(predicate: Predicate) -> bool:
    """True for ``t1.A != t2.A`` style predicates (class-partitionable)."""
    return (
        predicate.op is Operator.NE
        and not predicate.left.is_constant
        and not predicate.right.is_constant
        and predicate.left.tuple_name != predicate.right.tuple_name
        and predicate.left.attribute == predicate.right.attribute
    )


def _compile_predicates(predicates: Sequence[Predicate]):
    """Compile predicates into one ``check(row1, row2) -> bool`` closure.

    Equivalent to ``all(p.evaluate(row1, row2) for p in predicates)`` but
    without building a tuple-assignment mapping per predicate per pair, which
    is most of the reference path's per-pair cost.
    """
    steps = []
    for predicate in predicates:
        left, right = predicate.left, predicate.right
        steps.append((
            predicate.op.evaluate,
            left.is_constant, left.tuple_name == TUPLE_1, left.attribute, left.constant,
            right.is_constant, right.tuple_name == TUPLE_1, right.attribute, right.constant,
        ))

    def check(row1: Mapping[str, Any], row2: Mapping[str, Any]) -> bool:
        for (op_evaluate,
             left_const, left_first, left_attr, left_value,
             right_const, right_first, right_attr, right_value) in steps:
            left = left_value if left_const else (row1 if left_first else row2)[left_attr]
            right = right_value if right_const else (row1 if right_first else row2)[right_attr]
            if not op_evaluate(left, right):
                return False
        return True

    return check


class _ConstraintPlan:
    """Static evaluation plan for one constraint (shape analysis, compiled once)."""

    __slots__ = ("constraint", "mentioned", "kind", "eq_attrs", "residual_check",
                 "single_ne_attr")

    def __init__(self, constraint: DenialConstraint):
        self.constraint = constraint
        self.mentioned = frozenset(constraint.attributes())
        self.eq_attrs: tuple[str, ...] = ()
        self.residual_check = None
        self.single_ne_attr: str | None = None
        if constraint.is_single_tuple:
            self.kind = "single"
            self.residual_check = _compile_predicates(constraint.predicates)
            return
        eq_attrs = constraint.equality_attributes()
        if not eq_attrs:
            self.kind = "pairs"  # no hash partition possible: full-rescan fallback
            return
        self.kind = "eq"
        self.eq_attrs = eq_attrs
        residual = [p for p in constraint.predicates if not p.is_equality_join]
        self.residual_check = _compile_predicates(residual)
        if len(residual) == 1 and _is_ne_join(residual[0]):
            # the FD shape (eq-join + one same-attribute !=): pairs violate
            # exactly when their null-aware equivalence classes differ, no
            # predicate machinery needed per pair
            self.single_ne_attr = residual[0].left.attribute


class _ConstraintState:
    """Per-(base snapshot, constraint) incremental state."""

    __slots__ = ("plan", "index", "base_violations")

    def __init__(self, plan: _ConstraintPlan, index: MultiColumnIndex | None,
                 base_violations: list[Violation]):
        self.plan = plan
        self.index = index
        self.base_violations = base_violations


class IncrementalViolationDetector:
    """Delta-maintains denial-constraint violations over one base snapshot.

    Parameters
    ----------
    table:
        The base table (a plain :class:`~repro.dataset.table.Table`, usually
        the dirty table).  Per-constraint base violations are computed with
        the reference full-rescan path, once, lazily.
    constraints:
        Optional constraints to pre-build state for; any constraint seen later
        through :meth:`violations_for_view` is planned on first use.
    """

    def __init__(self, table: Table, constraints: Iterable[DenialConstraint] = ()):
        self.table = table
        self.base_version = table.version
        self._states: dict[DenialConstraint, _ConstraintState] = {}
        self._indexes: dict[tuple[str, ...], MultiColumnIndex] = {}
        self._columns: dict[str, Any] = {}  # base column arrays, fetched once
        #: packed base-key arrays per equality shape (vectorised path),
        #: keyed by the dictionary sizes they were packed under
        self._packed_contexts: dict[tuple[str, ...], tuple] = {}
        #: multi-coalition prime results parked per (view fingerprint, shape);
        #: populated by :meth:`precompute_walk_indexes`, popped (exclusively)
        #: by each view's :class:`RepairWalk`
        self._prime_cache: dict[tuple, tuple] = {}
        for constraint in constraints:
            self._state(constraint)

    # -- state construction ------------------------------------------------------

    def _column(self, attribute: str):
        column = self._columns.get(attribute)
        if column is None:
            column = self._columns[attribute] = self.table.store.column(attribute)
        return column

    def _index_for(self, eq_attrs: tuple[str, ...]) -> MultiColumnIndex:
        index = self._indexes.get(eq_attrs)
        if index is None:
            index = self._indexes[eq_attrs] = MultiColumnIndex(self.table.store, eq_attrs)
        return index

    def _state(self, constraint: DenialConstraint) -> _ConstraintState:
        state = self._states.get(constraint)
        if state is None:
            plan = _ConstraintPlan(constraint)
            index = self._index_for(plan.eq_attrs) if plan.kind == "eq" else None
            base_violations = list(find_violations(self.table, constraint))
            state = self._states[constraint] = _ConstraintState(plan, index, base_violations)
        return state

    # -- vectorised key building (dictionary-encoded path) -----------------------

    def _encoded_eq_base(self, eq_attrs: tuple[str, ...]):
        """Base code arrays + decode tables for one equality shape, or ``None``."""
        store = self.table.store
        encoding = store.encoding()
        code_columns = []
        decode_tables = []
        for attribute in eq_attrs:
            codes = encoding.codes(store, attribute)
            if codes is None:
                return None
            code_columns.append(codes)
            decode_tables.append(encoding.dictionary(attribute)._values)
        return code_columns, decode_tables

    def _packed_eq_base(self, eq_attrs: tuple[str, ...], code_columns,
                        decode_tables):
        """Packed base keys + validity for one shape (cached, read-only).

        Multi-column keys pack each component code with the current
        dictionary sizes as multipliers; the cache is invalidated when a
        dictionary outgrows the sizes it was packed under (callers encode
        view deltas *before* asking, so grown codes always fit).
        """
        if len(code_columns) == 1:
            sizes: tuple[int, ...] = ()  # single column: no packing, never stale
        else:
            sizes = tuple(len(table) for table in decode_tables)
        cached = self._packed_contexts.get(eq_attrs)
        if cached is not None and cached[0] == sizes:
            return cached[1], cached[2], cached[3]
        multipliers = list(sizes) if sizes else [1]
        packed = code_columns[0].astype(np.int64)
        valid = code_columns[0] != 0
        for j in range(1, len(code_columns)):
            packed *= multipliers[j]
            packed += code_columns[j]
            valid &= code_columns[j] != 0
        self._packed_contexts[eq_attrs] = (sizes, packed, valid, multipliers)
        return packed, valid, multipliers

    def _packed_view_keys(self, view_store, eq_attrs: tuple[str, ...]):
        """One view's equality keys as a packed code array, or ``None``.

        The base's packed keys are shared; the view contributes only a
        sparse code-space scatter.  Returns ``(packed, valid, multipliers,
        decode_tables, overridden)`` — ``packed``/``valid`` are read-only
        when the view has no equality overrides (they alias the base cache).
        """
        base = self._encoded_eq_base(eq_attrs)
        if base is None:
            return None
        code_columns, decode_tables = base
        override_arrays: list[tuple] = []
        any_overridden = False
        for attribute in eq_attrs:
            encoded = view_store.encoded_delta_arrays(attribute)
            if encoded is None:
                return None
            override_arrays.append(encoded)
            if len(encoded[0]):
                any_overridden = True
        packed, valid, multipliers = self._packed_eq_base(
            eq_attrs, code_columns, decode_tables)
        overridden: list[int] = []
        if any_overridden:
            packed = packed.copy()
            valid = valid.copy()
            overridden = self._scatter_packed_arrays(
                packed, valid, override_arrays, code_columns, multipliers)
        return packed, valid, multipliers, decode_tables, overridden

    @staticmethod
    def _scatter_packed(packed, valid, overridden, override_codes,
                        code_columns, multipliers) -> None:
        """Re-pack the overridden rows from their effective per-column codes.

        The per-row reference twin of :meth:`_scatter_packed_arrays`
        (property-tested equivalent); kept for the object-path comparison.
        """
        for row_id in overridden:
            value = 0
            parts_valid = True
            for j, codes in enumerate(code_columns):
                code = override_codes[j].get(row_id)
                if code is None:
                    code = int(codes[row_id])
                if code == 0:
                    parts_valid = False
                value = code if j == 0 else value * multipliers[j] + code
            packed[row_id] = value
            valid[row_id] = parts_valid

    @staticmethod
    def _scatter_packed_arrays(packed, valid, override_arrays,
                               code_columns, multipliers) -> list[int]:
        """Vectorised :meth:`_scatter_packed` fed by encoded-delta arrays.

        ``override_arrays`` holds one ``(rows, codes)`` pair per equality
        column (ascending rows).  All overridden rows are re-packed in one
        masked pass per column; returns the sorted overridden row ids as
        Python ints (walk-index ``keys`` dictionaries key on plain ints).
        """
        all_rows = np.unique(np.concatenate(
            [rows for rows, _ in override_arrays]))
        parts_valid = np.ones(all_rows.size, dtype=bool)
        value = None
        for j, codes in enumerate(code_columns):
            column = codes[all_rows].astype(np.int64)
            rows_j, codes_j = override_arrays[j]
            if len(rows_j):
                column[np.searchsorted(all_rows, rows_j)] = codes_j
            parts_valid &= column != 0
            value = column if j == 0 else value * multipliers[j] + column
        packed[all_rows] = value
        valid[all_rows] = parts_valid
        return all_rows.tolist()

    def precompute_walk_indexes(self, views_with_fingerprints,
                                constraints: Sequence[DenialConstraint]) -> int:
        """The multi-coalition walk: stacked key builds for a batch of views.

        The batch scheduler calls this with every distinct coalition view of
        one ``query_pairs`` pass.  For each equality shape the constraints
        partition on, all views' keys are evaluated as one stacked
        ``(n_views, n_rows)`` code matrix — the base's packed row broadcast
        once, each view contributing only its sparse code-space scatter —
        and the per-view group structures are parked under the view's
        fingerprint for its :class:`RepairWalk` to consume exclusively
        (:meth:`RepairWalk._build_windex_vectorized` pops them).  Unclaimed
        entries are dropped at the next precompute.  Returns the number of
        parked builds.
        """
        self._prime_cache.clear()
        shapes: list[tuple[str, ...]] = []
        for constraint in constraints:
            plan = self._state(constraint).plan
            if plan.kind == "eq" and plan.eq_attrs not in shapes:
                shapes.append(plan.eq_attrs)
        parked = 0
        encoding = self.table.store.encoding()
        for eq_attrs in shapes:
            base = self._encoded_eq_base(eq_attrs)
            if base is None:
                encoding.fallback_checks += len(views_with_fingerprints)
                continue
            code_columns, decode_tables = base
            # encode every view's delta first: the dictionaries may grow and
            # the packing multipliers must bound the grown code space
            usable = []
            for view, fingerprint in views_with_fingerprints:
                if getattr(view, "base", None) is not self.table:
                    continue  # foreign root: its codes live in another encoding
                override_arrays: list[tuple] | None = []
                any_overridden = False
                for attribute in eq_attrs:
                    encoded = view.store.encoded_delta_arrays(attribute)
                    if encoded is None:
                        override_arrays = None
                        break
                    override_arrays.append(encoded)
                    if len(encoded[0]):
                        any_overridden = True
                if override_arrays is None:
                    encoding.fallback_checks += 1
                    continue
                usable.append((fingerprint, override_arrays, any_overridden))
            if not usable:
                continue
            packed_base, valid_base, multipliers = self._packed_eq_base(
                eq_attrs, code_columns, decode_tables)
            matrix = np.tile(packed_base, (len(usable), 1))
            valid = np.tile(valid_base, (len(usable), 1))
            scattered: list[list[int]] = []
            for i, (_fingerprint, override_arrays, any_overridden) in enumerate(usable):
                if any_overridden:
                    scattered.append(self._scatter_packed_arrays(
                        matrix[i], valid[i], override_arrays, code_columns,
                        multipliers))
                else:
                    scattered.append([])
            for i, (fingerprint, _override_arrays, _any) in enumerate(usable):
                built = _groups_from_packed(matrix[i], valid[i], multipliers,
                                            decode_tables, scattered[i])
                self._prime_cache[(fingerprint, eq_attrs)] = built
                encoding.vectorized_checks += 1
                parked += 1
        return parked

    # -- base-table update maintenance --------------------------------------------

    def _live_key(self, eq_attrs: tuple[str, ...], row_id: int) -> tuple | None:
        """The row's equality key from the live (post-update) base columns."""
        key = []
        for attribute in eq_attrs:
            value = self._column(attribute)[row_id]
            if is_null(value):
                return None
            key.append(value)
        return tuple(key)

    def apply_base_update(self, changes: "Mapping[CellRef, tuple[Any, Any]]") -> None:
        """Delta-maintain the base state after an in-place base-table write.

        ``changes`` maps each written cell to its ``(old, new)`` value pair;
        the table itself has already been mutated (the column views cached in
        ``_columns`` are views of the same buffers, so they read post-update
        values).  The maintenance mirrors :meth:`_recheck_equality`, but the
        moves are *permanent*: equality indexes move the touched rows and the
        build-time key snapshots are patched in place, base violations are
        retracted and re-checked for touched rows only, and the packed-key /
        primed-walk caches derived from old base contents are dropped.
        Finishing by advancing :attr:`base_version` keeps this detector (and
        everything sharing it through :func:`detector_for`) live instead of
        triggering the rebuild path.
        """
        if not changes:
            self.base_version = self.table.version
            return
        touched_by_attr: dict[str, set[int]] = {}
        for cell in changes:
            touched_by_attr.setdefault(cell.attribute, set()).add(cell.row)

        # 1. move every persistent equality index permanently; the build-time
        # key snapshot list is shared with forks, so patch it in place (no
        # repair walk is live across a base update — walks are transient)
        for eq_attrs, index in self._indexes.items():
            rows: set[int] = set()
            for attribute in eq_attrs:
                rows.update(touched_by_attr.get(attribute, ()))
            if not rows:
                continue
            index_changes: dict[int, tuple[tuple | None, tuple | None]] = {}
            for row_id in rows:
                old_key = index.build_key_of(row_id)
                new_key = self._live_key(eq_attrs, row_id)
                if old_key != new_key:
                    index_changes[row_id] = (old_key, new_key)
            if index_changes:
                index.apply_delta(index_changes)
                for row_id, (_, new_key) in index_changes.items():
                    index._build_keys[row_id] = new_key

        # 2. retract + re-check base violations per constraint
        for state in self._states.values():
            plan = state.plan
            touched: set[int] = set()
            for attribute in plan.mentioned:
                touched.update(touched_by_attr.get(attribute, ()))
            if not touched:
                continue
            if plan.kind == "single":
                check = plan.residual_check
                out = [v for v in state.base_violations if v.rows[0] not in touched]
                row_of = lazy_row_reader(self.table)
                for row_id in sorted(touched):
                    row = row_of(row_id)
                    if check(row, row):
                        out.append(Violation(plan.constraint, (row_id,)))
                state.base_violations = out
                continue
            if plan.kind == "pairs":
                # no equality partition to maintain: full rescan, same as build
                state.base_violations = list(
                    find_violations(self.table, plan.constraint))
                continue
            out = [
                violation
                for violation in state.base_violations
                if violation.rows[0] not in touched and violation.rows[1] not in touched
            ]
            self._recheck_base_equality(state, touched, out)
            state.base_violations = out

        # 3. caches derived from the old base contents: the packed-key cache
        # validates only by dictionary *sizes* (a new value already present in
        # a dictionary would serve stale codes), and parked prime results are
        # keyed by fingerprints that no longer occur
        self._packed_contexts.clear()
        self._prime_cache.clear()
        self.base_version = self.table.version

    def _recheck_base_equality(self, state: _ConstraintState, touched: set[int],
                               out: list[Violation]) -> None:
        """Re-check touched rows against the (already moved) base index."""
        plan = state.plan
        index = state.index
        constraint = plan.constraint
        groups = index._groups  # read-only peek, as in _recheck_equality
        ne_attr = plan.single_ne_attr
        if ne_attr is not None:
            ne_column = self._column(ne_attr)

            def class_of(row_id: int):
                value = ne_column[row_id]
                return _NULL_CLASS if is_null(value) else value

        row_of = lazy_row_reader(self.table)
        for row_i in sorted(touched):
            key = index.build_key_of(row_i)  # patched: the post-update key
            if key is None:
                continue
            partners = groups.get(key)
            if partners is None or len(partners) <= 1:
                continue
            if ne_attr is not None:
                class_i = class_of(row_i)
                for row_j in partners:
                    if row_j == row_i or (row_j in touched and row_j < row_i):
                        continue
                    if class_i != class_of(row_j):
                        out.append(Violation(constraint, (row_i, row_j)))
                        out.append(Violation(constraint, (row_j, row_i)))
            else:
                check = plan.residual_check
                row_data_i = row_of(row_i)
                for row_j in partners:
                    if row_j == row_i or (row_j in touched and row_j < row_i):
                        continue
                    row_data_j = row_of(row_j)
                    if check(row_data_i, row_data_j):
                        out.append(Violation(constraint, (row_i, row_j)))
                    if check(row_data_j, row_data_i):
                        out.append(Violation(constraint, (row_j, row_i)))

    # -- public queries ----------------------------------------------------------

    def base_violations(self, constraints: Sequence[DenialConstraint]) -> ViolationSet:
        """Violations of the unperturbed base snapshot (cached per constraint)."""
        result = ViolationSet()
        for constraint in constraints:
            for violation in self._state(constraint).base_violations:
                result.add(violation)
        return result

    def violations_for_delta(self, delta: Mapping[CellRef, Any],
                             constraints: Sequence[DenialConstraint]) -> ViolationSet:
        """Violations of the base perturbed by ``delta`` (convenience wrapper)."""
        return self.violations_for_view(self.table.perturbed(delta), constraints)

    def violations_for_view(self, view: PerturbationView,
                            constraints: Sequence[DenialConstraint]) -> ViolationSet:
        """Violations of ``view`` — retract + re-check touched rows only.

        Produces exactly the multiset :func:`find_all_violations` would on a
        materialised copy of the view.  Falls back to the full rescan when the
        view is not rooted on this detector's base snapshot.
        """
        if view.base is not self.table or self.base_version != self.table.version:
            return find_all_violations(view, constraints)
        # the delta grouped per column — the overlay's own cached structure,
        # no per-cell objects are built
        delta_columns = view.delta_by_column()
        result = ViolationSet()
        for constraint in constraints:
            for violation in self.violations_for_view_constraint(
                view, constraint, delta_columns
            ):
                result.add(violation)
        return result

    def violations_for_view_constraint(
        self,
        view: PerturbationView,
        constraint: DenialConstraint,
        delta_columns: Mapping[str, Mapping[int, Any]] | None = None,
        row_of=None,
    ) -> list[Violation]:
        """Single-constraint base→view detection (the per-constraint core).

        ``row_of`` optionally supplies a shared row reader (see
        :func:`~repro.constraints.violations.find_violations`); a repair walk
        passes its persistent cache so the two instances of an oracle pair
        share one.  The view must be rooted on this detector's base snapshot.
        """
        if delta_columns is None:
            delta_columns = view.delta_by_column()
        state = self._state(constraint)
        plan = state.plan
        touched: set[int] = set()
        for attribute in plan.mentioned:
            overrides = delta_columns.get(attribute)
            if overrides:
                touched.update(overrides)
        if not touched:
            return list(state.base_violations)
        if plan.kind == "single":
            check = plan.residual_check
            out = [v for v in state.base_violations if v.rows[0] not in touched]
            if row_of is None:
                row_of = view.row
            for row_id in sorted(touched):
                row = row_of(row_id)
                if check(row, row):
                    out.append(Violation(constraint, (row_id,)))
            return out
        if plan.kind == "pairs":
            # no equality predicate to partition on: full rescan of this
            # constraint on the view
            return find_violations(view, constraint, row_of=row_of)
        out = [
            violation
            for violation in state.base_violations
            if violation.rows[0] not in touched and violation.rows[1] not in touched
        ]
        self._recheck_equality(view, state, touched, delta_columns, out, row_of=row_of)
        return out

    # -- the equality-partition re-check ------------------------------------------

    def _recheck_equality(self, view: PerturbationView, state: _ConstraintState,
                          touched: set[int],
                          delta_columns: Mapping[str, Mapping[int, Any]],
                          out: list[Violation], row_of=None) -> None:
        plan = state.plan
        index = state.index
        eq_attrs = plan.eq_attrs
        constraint = plan.constraint

        # equality-key columns: base arrays plus the view's per-column overrides
        eq_columns = [self._column(attribute) for attribute in eq_attrs]
        eq_overrides = [delta_columns.get(attribute) for attribute in eq_attrs]

        if len(eq_attrs) == 1:
            only_column, only_overrides = eq_columns[0], eq_overrides[0]

            def view_key_of(row_id: int) -> tuple | None:
                if only_overrides is not None and row_id in only_overrides:
                    value = only_overrides[row_id]
                else:
                    value = only_column[row_id]
                return None if is_null(value) else (value,)
        else:
            def view_key_of(row_id: int) -> tuple | None:
                """The row's equality key under the view (None on a null component)."""
                key = []
                for column, overrides in zip(eq_columns, eq_overrides):
                    if overrides is not None and row_id in overrides:
                        value = overrides[row_id]
                    else:
                        value = column[row_id]
                    if is_null(value):
                        return None
                    key.append(value)
                return tuple(key)

        # rows whose key may have moved: only those with an overridden eq cell.
        # Base keys are O(1) — the index retained them from build time.
        key_changed: set[int] = set()
        for overrides in eq_overrides:
            if overrides:
                key_changed.update(overrides)
        view_keys: dict[int, tuple | None] = {}
        index_changes: dict[int, tuple[tuple | None, tuple | None]] = {}
        for row_id in key_changed:
            old_key = index.build_key_of(row_id)
            new_key = view_keys[row_id] = view_key_of(row_id)
            if old_key != new_key:
                index_changes[row_id] = (old_key, new_key)

        ne_attr = plan.single_ne_attr
        if ne_attr is not None:
            ne_column = self._column(ne_attr)
            ne_overrides = delta_columns.get(ne_attr)

            def class_of(row_id: int):
                if ne_overrides is not None and row_id in ne_overrides:
                    value = ne_overrides[row_id]
                else:
                    value = ne_column[row_id]
                return _NULL_CLASS if is_null(value) else value

        if index_changes:
            index.apply_delta(index_changes)
        try:
            if row_of is None:
                row_of = lazy_row_reader(view)
            groups = index._groups  # read-only peek: skip the defensive copies

            for row_i in sorted(touched):
                if row_i in view_keys:
                    key = view_keys[row_i]
                else:
                    key = index.build_key_of(row_i)  # no eq cell touched
                if key is None:
                    continue  # a null component can never satisfy the eq-join
                partners = groups.get(key)
                if partners is None or len(partners) <= 1:
                    continue
                if ne_attr is not None:
                    class_i = class_of(row_i)
                    for row_j in partners:
                        if row_j == row_i or (row_j in touched and row_j < row_i):
                            continue  # touched pairs are handled by the lower id
                        if class_i != class_of(row_j):
                            out.append(Violation(constraint, (row_i, row_j)))
                            out.append(Violation(constraint, (row_j, row_i)))
                else:
                    check = plan.residual_check
                    row_data_i = row_of(row_i)
                    for row_j in partners:
                        if row_j == row_i or (row_j in touched and row_j < row_i):
                            continue
                        row_data_j = row_of(row_j)
                        if check(row_data_i, row_data_j):
                            out.append(Violation(constraint, (row_i, row_j)))
                        if check(row_data_j, row_data_i):
                            out.append(Violation(constraint, (row_j, row_i)))
        finally:
            if index_changes:
                index.revert_delta(index_changes)


# -- second-order incrementality: view→view deltas along one repair walk ----------


class _WalkIndex:
    """A forked equality index kept synchronised with one repair walk's view."""

    __slots__ = ("index", "keys", "log_pos")

    def __init__(self, index: MultiColumnIndex, keys: dict[int, tuple | None],
                 log_pos: int):
        self.index = index
        #: current view key per row, for rows whose key may differ from the
        #: base build-time key (absent rows fall back to ``build_key_of``)
        self.keys = keys
        self.log_pos = log_pos


class _FDClassState:
    """Class-partition accounting for one FD-shape constraint on one walk.

    For ``eq-join + one same-attribute !=`` constraints a pair of rows
    violates exactly when they share a (non-null) equality key and carry
    *different* null-aware classes of the ``!=`` attribute.  That makes
    per-pair bookkeeping unnecessary: per equality group it suffices to
    count rows per class —

    * a group violates iff it holds ≥ 2 distinct classes, and then **every**
      row of the group participates in a violation;
    * the group's ordered violation count is ``m² − Σ n_c²``;
    * one row changing key/class is an O(1) counter update (the walk's
      view→view delta unit), instead of a partner scan.

    ``groups`` maps each equality key to ``[class → count, m, contribution]``;
    ``mixed`` is the set of violating groups, ``total`` the ordered violation
    count over all groups, and ``assigned`` records each indexed row's
    current ``(key, class)`` so retraction never needs old cell values.
    """

    __slots__ = ("groups", "mixed", "total", "assigned", "rows_cache")

    def __init__(self):
        self.groups: dict[tuple, list] = {}
        self.mixed: set[tuple] = set()
        self.total = 0
        self.assigned: dict[int, tuple] = {}
        #: sorted violating-row list, cached until the next counter change
        self.rows_cache: list[int] | None = None

    def add(self, key: tuple, cls) -> None:
        state = self.groups.get(key)
        if state is None:
            state = self.groups[key] = [{cls: 1}, 1, 0]
            self.rows_cache = None
            return
        counter, m, contribution = state
        n = counter.get(cls, 0)
        delta = 2 * (m - n)
        counter[cls] = n + 1
        state[1] = m + 1
        state[2] = contribution + delta
        self.total += delta
        if contribution == 0 and delta:
            self.mixed.add(key)
        self.rows_cache = None

    def remove(self, key: tuple, cls) -> None:
        state = self.groups[key]
        counter, m, contribution = state
        n = counter[cls]
        delta = -2 * (m - n)
        if n == 1:
            del counter[cls]
        else:
            counter[cls] = n - 1
        state[1] = m - 1
        new_contribution = contribution + delta
        state[2] = new_contribution
        self.total += delta
        if new_contribution == 0:
            if contribution:
                self.mixed.discard(key)
            if state[1] == 0:
                del self.groups[key]
        self.rows_cache = None

    def row_violation_count(self, row: int) -> int:
        """Ordered violations the row currently participates in (O(1))."""
        assignment = self.assigned.get(row)
        if assignment is None:
            return 0
        key, cls = assignment
        counter, m, _contribution = self.groups[key]
        return 2 * (m - counter[cls])

    def fork(self) -> "_FDClassState":
        clone = _FDClassState.__new__(_FDClassState)
        clone.groups = {key: [dict(counter), m, contribution]
                        for key, (counter, m, contribution) in self.groups.items()}
        clone.mixed = set(self.mixed)
        clone.total = self.total
        clone.assigned = dict(self.assigned)
        clone.rows_cache = self.rows_cache  # never mutated in place
        return clone


class _WalkConstraint:
    """Per-constraint violation state at one point of the walk's write log.

    Two storage modes:

    * **list** (``fd is None``) — ``violations`` holds the explicit ordered
      :class:`Violation` list (single-tuple constraints, no-equality
      fallbacks, equality constraints with a general residual, and untouched
      FD constraints still carrying the base snapshot's list);
    * **class-partition** (``fd`` set) — FD-shape constraints keep a
      :class:`_FDClassState`; ``violations`` doubles as the lazily
      materialised list cache (``None`` when stale).
    """

    __slots__ = ("violations", "fd", "log_pos")

    def __init__(self, violations: list[Violation] | None, log_pos: int,
                 fd: _FDClassState | None = None):
        self.violations = violations
        self.fd = fd
        self.log_pos = log_pos


class RepairWalk:
    """Second-order incremental violation maintenance over one repair walk.

    The base→view path (:meth:`IncrementalViolationDetector.violations_for_view`)
    re-derives each detection from the base snapshot: per pass it recomputes
    the full delta's index moves, applies them, re-checks *every* touched row
    and reverts.  A repair loop calls detection once per constraint per pass
    on a view whose delta barely changes between passes, so almost all of that
    work repeats.

    ``RepairWalk`` instead maintains violations across the walk's own passes
    (view→view deltas):

    * equality indexes are *forked* once per walk
      (:meth:`~repro.engine.index.MultiColumnIndex.fork`) with the view's full
      delta applied and then kept applied — later passes only move the rows
      the repair wrote;
    * per-constraint violation lists carry over from the previous pass:
      a pass retracts and re-checks only the rows written since that
      constraint's last sync (read off the view's
      :attr:`~repro.engine.view.OverlayStore.change_log`);
    * row dicts are cached across passes, and the *pristine* (unwritten) rows
      are shared with any walk forked off this one — the two instances of a
      with/without oracle pair differ in a single cell, so one row cache
      serves both (rows a walk writes go to a walk-local cache instead).

    :meth:`fork_onto` is the paired-oracle entry point: it clones the primed
    state onto a sibling view that differs in a known set of cells and
    re-derives only those cells' rows, which is how the second instance of a
    pair starts mid-walk instead of from the base snapshot.

    The walk produces exactly the multiset of violations the reference
    full-rescan path produces at every point (property-tested); it never
    mutates the detector's shared per-base state.
    """

    __slots__ = ("view", "detector", "constraints", "vectorized", "_log",
                 "_cstates", "_windexes", "_dirty_rows", "_local_rows",
                 "_pristine_rows", "_row_log_pos")

    def __init__(self, view: PerturbationView, constraints: Iterable[DenialConstraint],
                 detector: IncrementalViolationDetector, vectorized: bool = False):
        self.view = view
        self.detector = detector
        self.constraints = list(constraints)
        self.vectorized = vectorized
        self._log = view.change_log
        self._cstates: dict[DenialConstraint, _WalkConstraint] = {}
        self._windexes: dict[tuple[str, ...], _WalkIndex] = {}
        #: rows written during this walk (or differing from the walk this one
        #: was forked off) — their row dicts live in the walk-local cache
        self._dirty_rows: set[int] = set()
        self._local_rows: dict[int, Mapping[str, Any]] = {}
        #: rows untouched by any walk of the pair — shared across forks
        self._pristine_rows: dict[int, Mapping[str, Any]] = {}
        self._row_log_pos = len(self._log)

    # -- row cache ----------------------------------------------------------------

    def _row_of(self, row_id: int) -> Mapping[str, Any]:
        if row_id in self._dirty_rows:
            row = self._local_rows.get(row_id)
            if row is None:
                row = self._local_rows[row_id] = self.view.row(row_id)
            return row
        row = self._pristine_rows.get(row_id)
        if row is None:
            row = self._pristine_rows[row_id] = self.view.row(row_id)
        return row

    def _consume_writes(self) -> None:
        """Mark rows written since the last call dirty and drop their cached dicts."""
        log = self._log
        position = self._row_log_pos
        if position == len(log):
            return
        for row, _attribute in log[position:]:
            self._dirty_rows.add(row)
            self._local_rows.pop(row, None)
        self._row_log_pos = len(log)

    # -- index maintenance ---------------------------------------------------------

    def _value_of(self, row_id: int, attribute: str):
        """Current view value via override dict + base column (no call chain)."""
        overrides = self.view.delta_by_column().get(attribute)
        if overrides is not None and row_id in overrides:
            return overrides[row_id]
        return self.detector._column(attribute)[row_id]

    def _view_key(self, eq_attrs: tuple[str, ...], row_id: int,
                  eq_overrides=None) -> tuple | None:
        if eq_overrides is None:
            delta_columns = self.view.delta_by_column()
            eq_overrides = [delta_columns.get(attribute) for attribute in eq_attrs]
        column_of = self.detector._column
        key = []
        for attribute, overrides in zip(eq_attrs, eq_overrides):
            if overrides is not None and row_id in overrides:
                value = overrides[row_id]
            else:
                value = column_of(attribute)[row_id]
            if is_null(value):
                return None
            key.append(value)
        return tuple(key)

    def _windex(self, eq_attrs: tuple[str, ...]) -> _WalkIndex:
        walk_index = self._windexes.get(eq_attrs)
        if walk_index is None:
            base_index = self.detector._index_for(eq_attrs)
            built = self._build_windex_vectorized(eq_attrs) if self.vectorized \
                else None
            if built is not None:
                groups, keys = built
            else:
                # Built from scratch in one ascending row pass (groups come
                # out sorted) instead of forking the base index and replaying
                # the full delta: on the heavily nulled coalition views most
                # rows just drop out of the index, so per-row bisect moves
                # would dominate.
                build_key_of = base_index.build_key_of
                delta_columns = self.view.delta_by_column()
                eq_overrides = [delta_columns.get(attribute) for attribute in eq_attrs]
                overridden: set[int] = set()
                for overrides in eq_overrides:
                    if overrides:
                        overridden.update(overrides)
                keys = {}
                groups = {}
                for row_id in range(self.view.n_rows):
                    if row_id in overridden:
                        key = keys[row_id] = self._view_key(eq_attrs, row_id, eq_overrides)
                    else:
                        key = build_key_of(row_id)
                    if key is None:
                        continue
                    rows = groups.get(key)
                    if rows is None:
                        groups[key] = [row_id]
                    else:
                        rows.append(row_id)
            index = MultiColumnIndex.__new__(MultiColumnIndex)
            index.attributes = base_index.attributes
            index._groups = groups
            index._build_keys = base_index._build_keys
            walk_index = self._windexes[eq_attrs] = _WalkIndex(index, keys, len(self._log))
        else:
            self._sync_windex(walk_index, eq_attrs)
        return walk_index

    def _build_windex_vectorized(self, eq_attrs: tuple[str, ...]):
        """``(groups, keys)`` via the code path, or ``None`` to fall back.

        Consumes a multi-coalition precomputed build when the batch
        scheduler parked one under this view's fingerprint
        (:meth:`IncrementalViolationDetector.precompute_walk_indexes`);
        otherwise the view's keys are packed and grouped standalone.
        """
        detector = self.detector
        encoding = detector.table.store.encoding()
        if detector._prime_cache and not self._log:
            built = detector._prime_cache.pop(
                (self.view.fingerprint(), eq_attrs), None)
            if built is not None:
                return built
        packed = detector._packed_view_keys(self.view.store, eq_attrs)
        if packed is None:
            encoding.fallback_checks += 1
            return None
        packed_arr, valid, multipliers, decode_tables, overridden = packed
        encoding.vectorized_checks += 1
        return _groups_from_packed(packed_arr, valid, multipliers,
                                   decode_tables, overridden)

    def _sync_windex(self, walk_index: _WalkIndex, eq_attrs: tuple[str, ...]) -> None:
        log = self._log
        if walk_index.log_pos == len(log):
            return
        rows = {row for row, attribute in log[walk_index.log_pos:]
                if attribute in eq_attrs}
        walk_index.log_pos = len(log)
        if rows:
            self._move_index_rows(walk_index, eq_attrs, rows)

    def _move_index_rows(self, walk_index: _WalkIndex, eq_attrs: tuple[str, ...],
                         rows: Iterable[int]) -> None:
        keys = walk_index.keys
        index = walk_index.index
        delta_columns = self.view.delta_by_column()
        eq_overrides = [delta_columns.get(attribute) for attribute in eq_attrs]
        changes: dict[int, tuple[tuple | None, tuple | None]] = {}
        for row_id in rows:
            old_key = keys[row_id] if row_id in keys else index.build_key_of(row_id)
            new_key = keys[row_id] = self._view_key(eq_attrs, row_id, eq_overrides)
            if old_key != new_key:
                changes[row_id] = (old_key, new_key)
        if changes:
            index.apply_delta(changes)

    # -- violation maintenance -------------------------------------------------------

    def _synced_state(self, constraint: DenialConstraint) -> _WalkConstraint:
        state = self._cstates.get(constraint)
        if state is not None:
            if state.log_pos == len(self._log):
                # already synced to the newest write — the common case inside
                # a repair pass; row-cache consumption can wait until a sync
                # actually has to re-check something
                return state
            self._consume_writes()
            self._sync_constraint(constraint, state)
        else:
            self._consume_writes()
            state = self._prime_constraint(constraint)
        return state

    def violations_for(self, constraint: DenialConstraint) -> list[Violation]:
        """Current violations of one constraint (synced to the view's writes)."""
        state = self._synced_state(constraint)
        fd = state.fd
        if fd is not None and state.violations is None:
            plan = self.detector._state(constraint).plan
            groups = self._windex(plan.eq_attrs).index._groups
            assigned = fd.assigned
            out = []
            for key in fd.mixed:
                rows = groups[key]
                for row_i in rows:
                    class_i = assigned[row_i][1]
                    for row_j in rows:
                        if row_j != row_i and assigned[row_j][1] != class_i:
                            out.append(Violation(constraint, (row_i, row_j)))
            state.violations = out
        return state.violations

    def violating_rows_for(self, constraint: DenialConstraint) -> list[int]:
        """Sorted rows participating in ≥1 violation of ``constraint``.

        What the rule-repair loop actually consumes; on the class-partition
        representation every row of a mixed group violates, so this is a
        concatenation of the mixed groups' (already sorted) row lists — no
        :class:`Violation` objects are materialised.
        """
        state = self._synced_state(constraint)
        fd = state.fd
        if fd is not None:
            rows = fd.rows_cache
            if rows is None:
                if not fd.mixed:
                    rows = []
                else:
                    plan = self.detector._state(constraint).plan
                    groups = self._windex(plan.eq_attrs).index._groups
                    # one concatenate+sort over the mixed groups' row lists
                    # (each already ascends) instead of a Python merge-sort;
                    # the repairers consume the resulting plain-int list
                    rows = np.sort(np.concatenate(
                        [np.asarray(groups[key], dtype=np.int64)
                         for key in fd.mixed])).tolist()
                fd.rows_cache = rows
            return rows
        return sorted({row for violation in state.violations for row in violation.rows})

    def has_violations(self, constraint: DenialConstraint) -> bool:
        """Whether the constraint currently has any violation (no materialising)."""
        state = self._synced_state(constraint)
        if state.fd is not None:
            return bool(state.fd.mixed)
        return bool(state.violations)

    def all_violations(self) -> ViolationSet:
        """Current violations of every constraint of the walk."""
        result = ViolationSet()
        for constraint in self.constraints:
            for violation in self.violations_for(constraint):
                result.add(violation)
        return result

    def prime(self) -> "RepairWalk":
        """Force state construction for every constraint (pre-fork hook)."""
        tracer = otrace.current()
        if tracer is None:
            for constraint in self.constraints:
                self._synced_state(constraint)
            return self
        with tracer.span("walk_prime", constraints=len(self.constraints)):
            for constraint in self.constraints:
                self._synced_state(constraint)
        return self

    def _prime_constraint(self, constraint: DenialConstraint) -> _WalkConstraint:
        """First detection: base→view retract + re-check, walk-local.

        The derivation is exactly one :meth:`_retract_recheck` step seeded
        with the base snapshot's violations and the full delta's touched rows
        — the same step later passes run against the previous pass's state.
        The walk's index is only built when some touched row actually keeps a
        non-null equality key; whatever *is* built is kept for later passes
        and the pair fork instead of being applied and reverted per
        detection (contrast
        :meth:`IncrementalViolationDetector.violations_for_view_constraint`).
        """
        detector_state = self.detector._state(constraint)
        plan = detector_state.plan
        delta_columns = self.view.delta_by_column()
        touched: set[int] = set()
        for attribute in plan.mentioned:
            overrides = delta_columns.get(attribute)
            if overrides:
                touched.update(overrides)
        if plan.kind == "eq" and plan.single_ne_attr is not None and touched:
            # FD shape with a perturbed view: build the class-partition state
            # in one pass over the walk index (the base violation list is
            # kept only for untouched views, where it is already exact)
            state = _WalkConstraint(None, len(self._log),
                                    self._build_fd_state(plan))
        else:
            state = _WalkConstraint(list(detector_state.base_violations), len(self._log))
            if touched:
                self._retract_recheck(constraint, plan, touched, state)
        self._cstates[constraint] = state
        return state

    def _class_reader(self, plan: _ConstraintPlan):
        """A ``class_of(row)`` closure for the plan's ``!=`` attribute."""
        ne_attr = plan.single_ne_attr
        ne_column = self.detector._column(ne_attr)
        ne_overrides = self.view.delta_by_column().get(ne_attr)

        def class_of(row_id: int):
            if ne_overrides is not None and row_id in ne_overrides:
                value = ne_overrides[row_id]
            else:
                value = ne_column[row_id]
            return _NULL_CLASS if is_null(value) else value

        return class_of

    def _class_values(self, plan: _ConstraintPlan) -> "list | None":
        """Per-row view classes of the ``!=`` attribute, decoded in one pass.

        The vectorised twin of :meth:`_class_reader`: the base column's code
        array is translated through the decode table (``_NULL_CLASS`` at code
        0) as one list comprehension, then the view's sparse overrides are
        patched in.  ``None`` when the column is unencodable.
        """
        ne_attr = plan.single_ne_attr
        store = self.detector.table.store
        encoding = store.encoding()
        codes = encoding.codes(store, ne_attr)
        if codes is None:
            encoding.fallback_checks += 1
            return None
        translate = list(encoding.dictionary(ne_attr)._values)
        translate[0] = _NULL_CLASS
        classes = [translate[code] for code in codes.tolist()]
        overrides = self.view.delta_by_column().get(ne_attr)
        if overrides:
            for row_id, value in overrides.items():
                classes[row_id] = _NULL_CLASS if is_null(value) else value
        encoding.vectorized_checks += 1
        return classes

    def _build_fd_state(self, plan: _ConstraintPlan) -> _FDClassState:
        """Class-partition state of the current view, one pass over the index."""
        walk_index = self._windex(plan.eq_attrs)
        classes = self._class_values(plan) if self.vectorized else None
        class_of = classes.__getitem__ if classes is not None \
            else self._class_reader(plan)
        fd = _FDClassState()
        groups = fd.groups
        assigned = fd.assigned
        total = 0
        for key, rows in walk_index.index._groups.items():
            counter: dict = {}
            for row in rows:
                cls = class_of(row)
                counter[cls] = counter.get(cls, 0) + 1
                assigned[row] = (key, cls)
            m = len(rows)
            if len(counter) > 1:
                contribution = m * m
                for count in counter.values():
                    contribution -= count * count
                fd.mixed.add(key)
                total += contribution
            else:
                contribution = 0
            groups[key] = [counter, m, contribution]
        fd.total = total
        return fd

    def _sync_constraint(self, constraint: DenialConstraint, state: _WalkConstraint) -> None:
        log = self._log
        if state.log_pos == len(log):
            return
        plan = self.detector._state(constraint).plan
        mentioned = plan.mentioned
        changed = {row for row, attribute in log[state.log_pos:]
                   if attribute in mentioned}
        state.log_pos = len(log)
        if changed:
            self._retract_recheck(constraint, plan, changed, state)

    def _retract_recheck(self, constraint: DenialConstraint, plan: _ConstraintPlan,
                         changed: set[int], state: _WalkConstraint) -> None:
        """Re-derive ``state``'s violations after ``changed`` rows moved (view→view)."""
        if plan.kind == "pairs":
            state.violations = find_violations(self.view, constraint, row_of=self._row_of)
            return
        if plan.kind == "single":
            check = plan.residual_check
            kept = [v for v in state.violations if v.rows[0] not in changed]
            for row_id in sorted(changed):
                row = self._row_of(row_id)
                if check(row, row):
                    kept.append(Violation(constraint, (row_id,)))
            state.violations = kept
            return
        if plan.single_ne_attr is not None:
            fd = state.fd
            state.violations = None  # invalidate the materialisation cache
            if fd is None:
                # an untouched FD constraint seeing its first write: build the
                # class-partition state from the current view wholesale
                state.fd = self._build_fd_state(plan)
                return
            walk_index = self._windex(plan.eq_attrs)  # sync key moves first
            keys = walk_index.keys
            build_key_of = walk_index.index.build_key_of
            class_of = self._class_reader(plan)
            assigned = fd.assigned
            for row in changed:
                assignment = assigned.pop(row, None)
                if assignment is not None:
                    fd.remove(assignment[0], assignment[1])
                key = keys[row] if row in keys else build_key_of(row)
                if key is not None:
                    cls = class_of(row)
                    fd.add(key, cls)
                    assigned[row] = (key, cls)
            return
        kept = [v for v in state.violations
                if v.rows[0] not in changed and v.rows[1] not in changed]
        self._recheck_rows(constraint, plan, changed, kept)
        state.violations = kept

    def _recheck_rows(self, constraint: DenialConstraint, plan: _ConstraintPlan,
                      touched: set[int], out: list[Violation]) -> None:
        """Append the violations the ``touched`` rows participate in (eq-kind).

        Mirrors :meth:`IncrementalViolationDetector._recheck_equality`, but
        against the walk's forked (already-applied) index and persistent row
        cache instead of apply/revert on the shared base index.
        """
        walk_index = self._windex(plan.eq_attrs)
        groups = walk_index.index._groups
        keys = walk_index.keys
        build_key_of = walk_index.index.build_key_of
        ne_attr = plan.single_ne_attr
        check = plan.residual_check
        row_of = self._row_of
        if ne_attr is not None:
            ne_column = self.detector._column(ne_attr)
            ne_overrides = self.view.delta_by_column().get(ne_attr)

            def class_of(row_id: int):
                if ne_overrides is not None and row_id in ne_overrides:
                    value = ne_overrides[row_id]
                else:
                    value = ne_column[row_id]
                return _NULL_CLASS if is_null(value) else value

        for row_i in sorted(touched):
            key = keys[row_i] if row_i in keys else build_key_of(row_i)
            if key is None:
                continue  # a null component can never satisfy the eq-join
            partners = groups.get(key)
            if partners is None or len(partners) <= 1:
                continue
            if ne_attr is not None:
                class_i = class_of(row_i)
                for row_j in partners:
                    if row_j == row_i or (row_j in touched and row_j < row_i):
                        continue  # touched pairs are handled by the lower id
                    if class_i != class_of(row_j):
                        out.append(Violation(constraint, (row_i, row_j)))
                        out.append(Violation(constraint, (row_j, row_i)))
            else:
                row_data_i = row_of(row_i)
                for row_j in partners:
                    if row_j == row_i or (row_j in touched and row_j < row_i):
                        continue
                    row_data_j = row_of(row_j)
                    if check(row_data_i, row_data_j):
                        out.append(Violation(constraint, (row_i, row_j)))
                    if check(row_data_j, row_data_i):
                        out.append(Violation(constraint, (row_j, row_i)))

    # -- one-cell trials (greedy candidate scoring) -----------------------------------

    def count_if(self, cell: CellRef, value: Any) -> int:
        """Total violation count if ``cell`` were set to ``value`` (state untouched).

        Equals ``len(find_all_violations(trial))`` for the materialised trial
        table, but only the one touched row is re-checked.
        """
        self._consume_writes()
        row_id, attribute = cell.row, cell.attribute
        total = 0
        for constraint in self.constraints:
            plan = self.detector._state(constraint).plan
            if plan.kind == "pairs":
                if attribute not in plan.mentioned:
                    total += len(self.violations_for(constraint))
                else:
                    trial = self.view.perturbed({cell: value}, trusted=True)
                    total += len(find_violations(trial, constraint))
                continue
            state = self._synced_state(constraint)
            fd = state.fd
            if fd is None and plan.single_ne_attr is not None and attribute in plan.mentioned:
                # candidate scoring wants O(1) per-row counts: upgrade the
                # untouched FD constraint to class-partition accounting now
                fd = state.fd = self._build_fd_state(plan)
                state.violations = None
            if fd is not None:
                if attribute not in plan.mentioned:
                    total += fd.total
                    continue
                total += fd.total - fd.row_violation_count(row_id)
            else:
                if attribute not in plan.mentioned:
                    total += len(state.violations)
                    continue
                total += sum(1 for v in state.violations if row_id not in v.rows)
            total += self._count_row_if(constraint, plan, row_id, attribute, value)
        return total

    def _count_row_if(self, constraint: DenialConstraint, plan: _ConstraintPlan,
                      row_id: int, attribute: str, value: Any) -> int:
        if plan.kind == "single":
            row = dict(self._row_of(row_id))
            row[attribute] = value
            return 1 if plan.residual_check(row, row) else 0
        walk_index = self._windex(plan.eq_attrs)
        eq_attrs = plan.eq_attrs
        value_of = self._value_of
        if attribute in eq_attrs:
            parts: list | None = []
            for eq_attr in eq_attrs:
                part = value if eq_attr == attribute else value_of(row_id, eq_attr)
                if is_null(part):
                    parts = None
                    break
                parts.append(part)
            key = tuple(parts) if parts is not None else None
        else:
            keys = walk_index.keys
            key = keys[row_id] if row_id in keys else walk_index.index.build_key_of(row_id)
        if key is None:
            return 0
        ne_attr = plan.single_ne_attr
        if ne_attr is not None:
            # O(1) via the class-partition counters (count_if built them)
            fd = self._cstates[constraint].fd
            group = fd.groups.get(key)
            if group is None:
                return 0
            value_i = value if attribute == ne_attr else value_of(row_id, ne_attr)
            class_i = _NULL_CLASS if is_null(value_i) else value_i
            counter, m, _contribution = group
            n = counter.get(class_i, 0)
            assignment = fd.assigned.get(row_id)
            if assignment is not None and assignment[0] == key:
                # exclude the row's own current occupancy of this group
                m -= 1
                if assignment[1] == class_i:
                    n -= 1
            return 2 * (m - n)
        partners = walk_index.index._groups.get(key)
        if not partners:
            return 0
        count = 0
        check = plan.residual_check
        row_i = dict(self._row_of(row_id))
        row_i[attribute] = value
        for row_j in partners:
            if row_j == row_id:
                continue
            row_data_j = self._row_of(row_j)
            if check(row_i, row_data_j):
                count += 1
            if check(row_data_j, row_i):
                count += 1
        return count

    def count_if_many(self, cell: CellRef, values: Sequence[Any]) -> list[int]:
        """``[count_if(cell, v) for v in values]`` with the per-call work hoisted.

        Greedy candidate scoring calls this once per violating cell instead
        of once per candidate: constraints are synced once, every
        candidate-independent term is computed once, and the per-candidate
        remainder runs as class-counter lookups in a tight loop.
        Bit-identical to the one-at-a-time path.
        """
        return self.count_if_many_at(cell.row, cell.attribute, values)

    def count_if_many_at(self, row_id: int, attribute: str,
                         values: Sequence[Any]) -> list[int]:
        """:meth:`count_if_many` addressed by ``(row, attribute)`` directly.

        The array-ranking consumers feed trial batches straight from
        :meth:`cell_degrees_arrays` coordinates; no :class:`CellRef` is built
        unless a ``pairs``-kind constraint forces the object fallback.
        """
        self._consume_writes()
        n_values = len(values)
        totals = [0] * n_values
        encoding = self.detector.table.store.encoding() if self.vectorized else None
        for constraint in self.constraints:
            plan = self.detector._state(constraint).plan
            if plan.kind == "pairs":
                if attribute not in plan.mentioned:
                    base = len(self.violations_for(constraint))
                    for i in range(n_values):
                        totals[i] += base
                else:
                    if encoding is not None:
                        encoding.fallback_checks += n_values
                    cell = CellRef(row_id, attribute)
                    for i, value in enumerate(values):
                        trial = self.view.perturbed({cell: value}, trusted=True)
                        totals[i] += len(find_violations(trial, constraint))
                continue
            state = self._synced_state(constraint)
            fd = state.fd
            if fd is None and plan.single_ne_attr is not None and attribute in plan.mentioned:
                fd = state.fd = self._build_fd_state(plan)
                state.violations = None
            if fd is not None:
                if attribute not in plan.mentioned:
                    base = fd.total
                    for i in range(n_values):
                        totals[i] += base
                    continue
                base = fd.total - fd.row_violation_count(row_id)
            else:
                if attribute not in plan.mentioned:
                    base = len(state.violations)
                    for i in range(n_values):
                        totals[i] += base
                    continue
                base = sum(1 for v in state.violations if row_id not in v.rows)
            if plan.kind == "single":
                row = dict(self._row_of(row_id))
                check = plan.residual_check
                for i, value in enumerate(values):
                    row[attribute] = value
                    totals[i] += base + (1 if check(row, row) else 0)
                continue
            self._count_row_if_many(constraint, plan, row_id, attribute,
                                    values, base, totals, encoding)
        return totals

    def _count_row_if_many(self, constraint: DenialConstraint, plan: _ConstraintPlan,
                           row_id: int, attribute: str, values: Sequence[Any],
                           base: int, totals: list[int], encoding) -> None:
        """Fold one eq-kind constraint's per-candidate term into ``totals``."""
        ne_attr = plan.single_ne_attr
        n_values = len(values)
        if ne_attr is None:
            # general residual: partner scans per candidate, no hoisting
            if encoding is not None:
                encoding.fallback_checks += n_values
            for i, value in enumerate(values):
                totals[i] += base + self._count_row_if(constraint, plan, row_id,
                                                       attribute, value)
            return
        walk_index = self._windex(plan.eq_attrs)
        eq_attrs = plan.eq_attrs
        fd = self._cstates[constraint].fd
        assignment = fd.assigned.get(row_id)
        if encoding is not None:
            encoding.vectorized_checks += n_values
        if attribute not in eq_attrs:
            # one fixed key (and group) for every candidate
            keys = walk_index.keys
            key = keys[row_id] if row_id in keys else walk_index.index.build_key_of(row_id)
            group = fd.groups.get(key) if key is not None else None
            if group is None:
                for i in range(n_values):
                    totals[i] += base
                return
            counter_get = group[0].get
            m = group[1]
            own_group = assignment is not None and assignment[0] == key
            if own_group:
                m -= 1  # exclude the row's own current occupancy
            own_class = assignment[1] if own_group else None
            if attribute == ne_attr:
                for i, value in enumerate(values):
                    class_i = _NULL_CLASS if is_null(value) else value
                    n = counter_get(class_i, 0)
                    if own_group and own_class == class_i:
                        n -= 1
                    totals[i] += base + 2 * (m - n)
            else:
                value_i = self._value_of(row_id, ne_attr)
                class_i = _NULL_CLASS if is_null(value_i) else value_i
                n = counter_get(class_i, 0)
                if own_group and own_class == class_i:
                    n -= 1
                count = 2 * (m - n)
                for i in range(n_values):
                    totals[i] += base + count
            return
        # the candidate feeds the equality key: rebuild it per candidate
        slot = eq_attrs.index(attribute)
        parts: list | None = []
        for eq_attr in eq_attrs:
            if eq_attr == attribute:
                parts.append(None)  # slot for the candidate
                continue
            part = self._value_of(row_id, eq_attr)
            if is_null(part):
                parts = None
                break
            parts.append(part)
        if parts is None:
            for i in range(n_values):
                totals[i] += base  # a null component never satisfies the eq-join
            return
        value_i = self._value_of(row_id, ne_attr)
        class_i = _NULL_CLASS if is_null(value_i) else value_i
        groups_get = fd.groups.get
        for i, value in enumerate(values):
            if is_null(value):
                totals[i] += base
                continue
            parts[slot] = value
            key = tuple(parts)
            group = groups_get(key)
            if group is None:
                totals[i] += base
                continue
            counter, m, _contribution = group
            n = counter.get(class_i, 0)
            if assignment is not None and assignment[0] == key:
                m -= 1
                if assignment[1] == class_i:
                    n -= 1
            totals[i] += base + 2 * (m - n)

    def cell_degrees(self) -> tuple[int, dict[CellRef, int]]:
        """Violation total and per-cell degrees, no ``Violation`` objects.

        Equivalent to materialising :meth:`all_violations` and reading
        ``count_for_cell`` for every involved cell, but FD-shape constraints
        contribute straight from their class-partition counters: every row of
        a mixed group participates, its degree is the O(1)
        ``row_violation_count``, and its cells are the row crossed with the
        constraint's attributes.  Only non-FD constraints still walk their
        explicit violation lists.
        """
        counts: dict[CellRef, int] = {}
        total = 0
        for constraint in self.constraints:
            state = self._synced_state(constraint)
            plan = self.detector._state(constraint).plan
            fd = state.fd
            if fd is None and plan.single_ne_attr is not None:
                fd = state.fd = self._build_fd_state(plan)
                state.violations = None
            if fd is not None:
                total += fd.total
                if fd.total:
                    attrs = plan.eq_attrs + (plan.single_ne_attr,)
                    for row_id in self.violating_rows_for(constraint):
                        degree = fd.row_violation_count(row_id)
                        for attr in attrs:
                            cell = CellRef(row_id, attr)
                            counts[cell] = counts.get(cell, 0) + degree
                continue
            violations = self.violations_for(constraint)
            total += len(violations)
            for violation in violations:
                for cell in violation.cells():
                    counts[cell] = counts.get(cell, 0) + 1
        return total, counts

    def cell_degrees_arrays(self):
        """Violation total and per-cell degrees as parallel arrays, no objects.

        The bulk twin of :meth:`cell_degrees` (property-tested equivalent):
        returns ``(total, rows, attr_codes, counts, attrs)`` where ``rows``/
        ``attr_codes``/``counts`` are parallel ``int64`` arrays sorted by
        ``(row, attr_code)`` and ``attrs`` is the sorted attribute tuple the
        codes index into — so ordering by ``(row, attr_code)`` equals
        ordering by ``(row, attribute)``.  FD-shape constraints contribute
        whole ``rows × attrs`` blocks straight off their class-partition
        counters; only non-FD constraints still walk violation objects.
        The single ranked winner is the only :class:`CellRef` a consumer
        ever needs to build.
        """
        total = 0
        fd_parts: list[tuple[np.ndarray, np.ndarray, tuple[str, ...]]] = []
        cell_parts: list[tuple[int, str]] = []
        names: set[str] = set()
        for constraint in self.constraints:
            state = self._synced_state(constraint)
            plan = self.detector._state(constraint).plan
            fd = state.fd
            if fd is None and plan.single_ne_attr is not None:
                fd = state.fd = self._build_fd_state(plan)
                state.violations = None
            if fd is not None:
                total += fd.total
                if fd.total:
                    attrs = plan.eq_attrs + (plan.single_ne_attr,)
                    rows = self.violating_rows_for(constraint)
                    degrees = [fd.row_violation_count(row_id) for row_id in rows]
                    fd_parts.append((np.asarray(rows, dtype=np.int64),
                                     np.asarray(degrees, dtype=np.int64),
                                     attrs))
                    names.update(attrs)
                continue
            violations = self.violations_for(constraint)
            total += len(violations)
            for violation in violations:
                for cell in violation.cells():
                    cell_parts.append((cell.row, cell.attribute))
                    names.add(cell.attribute)
        attrs_tuple = tuple(sorted(names))
        if not attrs_tuple:
            empty = np.empty(0, dtype=np.int64)
            return total, empty, empty, empty, attrs_tuple
        code_of = {name: code for code, name in enumerate(attrs_tuple)}
        n_attrs = len(attrs_tuple)
        packed_parts: list[np.ndarray] = []
        count_parts: list[np.ndarray] = []
        for rows, degrees, attrs in fd_parts:
            codes = np.asarray([code_of[a] for a in attrs], dtype=np.int64)
            packed_parts.append((rows[:, None] * n_attrs + codes[None, :]).ravel())
            count_parts.append(np.repeat(degrees, len(attrs)))
        if cell_parts:
            packed_parts.append(np.asarray(
                [row * n_attrs + code_of[attr] for row, attr in cell_parts],
                dtype=np.int64))
            count_parts.append(np.ones(len(cell_parts), dtype=np.int64))
        packed = np.concatenate(packed_parts)
        keys, inverse = np.unique(packed, return_inverse=True)
        counts = np.bincount(
            inverse, weights=np.concatenate(count_parts),
            minlength=len(keys),
        ).astype(np.int64)
        return total, keys // n_attrs, keys % n_attrs, counts, attrs_tuple

    # -- pair forking -------------------------------------------------------------------

    def fork_onto(self, view: PerturbationView,
                  differing_cells: Iterable[CellRef]) -> "RepairWalk":
        """Clone the primed state onto a sibling view differing in known cells.

        ``view`` must share this walk's base table and differ from this walk's
        *current* view content only at (a subset of) ``differing_cells`` —
        which is exactly the with/without pair contract: call right after
        :meth:`prime`, before the owning repair loop writes anything.  Only
        the differing cells' rows are retracted and re-checked; everything
        else (violation lists, forked indexes, the pristine row cache) carries
        over.
        """
        clone = RepairWalk.__new__(RepairWalk)
        clone.view = view
        clone.detector = self.detector
        clone.constraints = list(self.constraints)
        clone.vectorized = self.vectorized
        clone._log = view.change_log
        clone._row_log_pos = len(clone._log)
        clone._pristine_rows = self._pristine_rows  # shared row cache (see class doc)
        clone._local_rows = {}
        clone._dirty_rows = set()
        log_pos = len(clone._log)
        clone._cstates = {
            constraint: _WalkConstraint(
                # the materialisation cache is never mutated in place, so the
                # clone can share it; list-mode lists are copied (retraction
                # rebuilds them, but the parent keeps reading its own)
                state.violations if state.fd is not None
                else list(state.violations),
                log_pos,
                state.fd.fork() if state.fd is not None else None,
            )
            for constraint, state in self._cstates.items()
        }
        clone._windexes = {
            eq_attrs: _WalkIndex(walk_index.index.fork(), dict(walk_index.keys), log_pos)
            for eq_attrs, walk_index in self._windexes.items()
        }

        my_value = self.view.value
        other_value = view.value
        changed = [cell for cell in differing_cells
                   if values_differ(my_value(cell.row, cell.attribute),
                                    other_value(cell.row, cell.attribute))]
        if not changed:
            return clone
        clone._dirty_rows.update(cell.row for cell in changed)
        for eq_attrs, walk_index in clone._windexes.items():
            rows = {cell.row for cell in changed if cell.attribute in eq_attrs}
            if rows:
                clone._move_index_rows(walk_index, eq_attrs, rows)
        for constraint, state in clone._cstates.items():
            plan = clone.detector._state(constraint).plan
            rows = {cell.row for cell in changed if cell.attribute in plan.mentioned}
            if rows:
                clone._retract_recheck(constraint, plan, rows, state)
        return clone


def repair_walk_for(table: Table,
                    constraints: Sequence[DenialConstraint],
                    vectorized: bool = False) -> RepairWalk | None:
    """A :class:`RepairWalk` over ``table``, or ``None`` off the view hot path.

    Repair algorithms call this on their working snapshot: a
    :class:`PerturbationView` gets second-order maintenance, everything else
    (plain tables, the reference path) returns ``None`` and the caller falls
    back to per-pass detection.  ``vectorized`` switches the walk's builds
    and candidate trials onto the dictionary-encoded code path (results are
    bit-identical either way).
    """
    if isinstance(table, PerturbationView):
        return RepairWalk(table, constraints, detector_for(table.base),
                          vectorized=vectorized)
    return None


# -- detector registry and dispatch helpers ---------------------------------------


def detector_for(table: Table) -> IncrementalViolationDetector:
    """The (cached) detector for a base table snapshot.

    One detector is attached per table instance and rebuilt whenever the
    table's mutation version moves, so callers never see stale base state.
    """
    detector = getattr(table, "_incremental_detector", None)
    if detector is None or detector.base_version != table.version:
        detector = IncrementalViolationDetector(table)
        table._incremental_detector = detector
    return detector


def find_all_violations_auto(table: Table,
                             constraints: Sequence[DenialConstraint]) -> ViolationSet:
    """Incremental detection for views, reference full rescan for plain tables.

    This is the dispatch the repair algorithms call on their working snapshot:
    a :class:`PerturbationView` (the Shapley hot path) is evaluated by delta
    maintenance against its base, everything else takes the reference path.
    """
    if isinstance(table, PerturbationView):
        return detector_for(table.base).violations_for_view(table, list(constraints))
    return find_all_violations(table, constraints)


def find_violations_auto(table: Table, constraint: DenialConstraint) -> list[Violation]:
    """Single-constraint variant of :func:`find_all_violations_auto`."""
    if isinstance(table, PerturbationView):
        return list(detector_for(table.base).violations_for_view(table, [constraint]))
    return find_violations(table, constraint)


def find_all_violations_fast(table: Table,
                             constraints: Sequence[DenialConstraint]) -> ViolationSet:
    """Like :func:`find_all_violations_auto`, but plain tables also go through
    the detector (cached per mutation version).

    Used by the greedy repairer, whose inner loop re-detects on the same
    snapshot for every candidate re-assignment: the snapshot's violations are
    computed once per version and each candidate is evaluated as a one-cell
    delta on top.
    """
    if isinstance(table, PerturbationView):
        return detector_for(table.base).violations_for_view(table, list(constraints))
    return detector_for(table).base_violations(list(constraints))
