"""Constraint discovery.

The demo assumes users arrive with "an initial set of DCs".  To make the
examples and the ablation benches self-contained we provide a compact
discoverer in the spirit of the FD/DC discovery literature ([2] in the
paper):

* :func:`discover_fds` — exact discovery of minimal functional dependencies
  with left-hand sides up to a configurable size, using partition refinement
  (the core idea of TANE).
* :func:`discover_dcs` — evidence-set based discovery of two-tuple denial
  constraints over a restricted predicate space (equality / inequality on
  each attribute), following the FastDC recipe: build the predicate evidence
  of every tuple pair, then emit constraints whose predicate set is never
  jointly satisfied.

Both are intended for the laptop-scale tables used here (hundreds to a few
thousand rows), not for industrial workloads.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from repro.constraints.dc import DenialConstraint
from repro.constraints.fd import FunctionalDependency
from repro.constraints.predicates import Operator, Predicate
from repro.dataset.table import Table
from repro.engine.storage import is_null


def _partition(table: Table, attributes: Sequence[str]) -> dict[tuple, list[int]]:
    """Group row ids by their values on ``attributes`` (nulls grouped by None)."""
    groups: dict[tuple, list[int]] = {}
    for row_id in range(table.n_rows):
        key = tuple(table.value(row_id, attribute) for attribute in attributes)
        groups.setdefault(key, []).append(row_id)
    return groups


def _fd_holds(table: Table, lhs: Sequence[str], rhs: str) -> bool:
    """Check whether ``lhs -> rhs`` holds exactly on the table (nulls ignored)."""
    for key, rows in _partition(table, lhs).items():
        if any(is_null(part) for part in key):
            continue
        rhs_values = {
            table.value(row, rhs)
            for row in rows
            if not is_null(table.value(row, rhs))
        }
        if len(rhs_values) > 1:
            return False
    return True


def discover_fds(table: Table, max_lhs_size: int = 2) -> list[FunctionalDependency]:
    """Discover minimal functional dependencies holding exactly on ``table``.

    A dependency ``X → A`` is reported only if no proper subset of ``X`` also
    determines ``A`` (minimality), and trivial dependencies are skipped.
    """
    attributes = list(table.attributes)
    discovered: list[FunctionalDependency] = []
    determined_by: dict[str, list[tuple[str, ...]]] = {a: [] for a in attributes}

    for rhs in attributes:
        candidates = [a for a in attributes if a != rhs]
        for size in range(1, max_lhs_size + 1):
            for lhs in combinations(candidates, size):
                if any(set(smaller) <= set(lhs) for smaller in determined_by[rhs]):
                    continue  # a subset already determines rhs: not minimal
                if _fd_holds(table, lhs, rhs):
                    determined_by[rhs].append(lhs)
                    discovered.append(FunctionalDependency(lhs, rhs))
    return discovered


def _predicate_space(attributes: Iterable[str]) -> list[Predicate]:
    """The restricted predicate space used for DC discovery: =, ≠ per attribute."""
    space: list[Predicate] = []
    for attribute in attributes:
        space.append(Predicate.between_tuples(attribute, Operator.EQ))
        space.append(Predicate.between_tuples(attribute, Operator.NE))
    return space


def _evidence(table: Table, space: Sequence[Predicate]) -> set[frozenset[int]]:
    """Evidence sets: for each ordered tuple pair, which predicates it satisfies."""
    evidence: set[frozenset[int]] = set()
    rows = [table.row(i) for i in range(table.n_rows)]
    for i, row_i in enumerate(rows):
        for j, row_j in enumerate(rows):
            if i == j:
                continue
            satisfied = frozenset(
                index for index, predicate in enumerate(space)
                if predicate.evaluate(row_i, row_j)
            )
            evidence.add(satisfied)
    return evidence


def discover_dcs(
    table: Table,
    max_predicates: int = 3,
    attributes: Sequence[str] | None = None,
    prefix: str = "D",
) -> list[DenialConstraint]:
    """Discover two-tuple denial constraints that hold exactly on ``table``.

    A candidate predicate set ``P`` (of size at most ``max_predicates``) forms
    a valid DC ``¬(∧ P)`` iff no tuple pair satisfies all of ``P`` — i.e. ``P``
    is not a subset of any evidence set.  Only minimal constraints (no valid
    proper subset) are returned; candidates mixing ``=`` and ``≠`` on the same
    attribute are skipped as tautologically valid but uninformative.
    """
    attributes = list(attributes or table.attributes)
    space = _predicate_space(attributes)
    evidence = _evidence(table, space)
    valid_sets: list[frozenset[int]] = []
    results: list[DenialConstraint] = []

    def is_minimal(candidate: frozenset[int]) -> bool:
        return not any(existing < candidate for existing in valid_sets)

    indexes = range(len(space))
    counter = 0
    for size in range(1, max_predicates + 1):
        for combo in combinations(indexes, size):
            candidate = frozenset(combo)
            touched = [space[i].left.attribute for i in combo]
            if len(set(touched)) != len(touched):
                continue  # two predicates on the same attribute: skip
            if not is_minimal(candidate):
                continue
            if any(candidate <= observed for observed in evidence):
                continue  # some pair satisfies all predicates: not a valid DC
            valid_sets.append(candidate)
            counter += 1
            predicates = [space[i] for i in sorted(combo)]
            results.append(
                DenialConstraint(
                    name=f"{prefix}{counter}",
                    predicates=predicates,
                    description="discovered from data",
                )
            )
    return results


def verify_constraints(table: Table, constraints: Sequence[DenialConstraint]) -> dict[str, bool]:
    """Map each constraint name to whether it holds (has no violations) on ``table``."""
    from repro.constraints.violations import find_violations

    return {
        constraint.name: not find_violations(table, constraint)
        for constraint in constraints
    }
