"""Violation detection engine.

Given a table and a set of denial constraints, find every violating tuple
(pair).  Two-tuple constraints with at least one ``t1.A == t2.A`` predicate
are evaluated with hash partitioning on those attributes (only rows sharing
the equality key can violate); other constraints fall back to a pair scan.

The detector is used by every repair algorithm and — indirectly, through the
black-box oracle — by every Shapley evaluation, so it is the hottest code
path of the library.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.constraints.dc import DenialConstraint
from repro.dataset.table import CellRef, Table
from repro.engine.index import MultiColumnIndex


@dataclass(frozen=True)
class Violation:
    """One violation: a constraint plus the (ordered) rows that trigger it."""

    constraint: DenialConstraint
    rows: tuple[int, ...]

    @property
    def row1(self) -> int:
        return self.rows[0]

    @property
    def row2(self) -> int | None:
        return self.rows[1] if len(self.rows) > 1 else None

    def cells(self) -> list[CellRef]:
        """Cells referenced by the constraint's predicates for these rows."""
        return self.constraint.cells_involved(self.row1, self.row2)

    def __str__(self) -> str:
        row_text = ", ".join(f"t{r + 1}" for r in self.rows)
        return f"{self.constraint.name}({row_text})"


class ViolationSet:
    """All violations of a constraint set on one table snapshot."""

    def __init__(self, violations: Iterable[Violation] = ()):
        self._violations: list[Violation] = list(violations)
        self._by_constraint: dict[str, list[Violation]] = defaultdict(list)
        self._by_row: dict[int, list[Violation]] = defaultdict(list)
        self._by_cell: dict[CellRef, list[Violation]] = defaultdict(list)
        for violation in self._violations:
            self._register(violation)

    def _register(self, violation: Violation) -> None:
        self._by_constraint[violation.constraint.name].append(violation)
        for row in set(violation.rows):
            self._by_row[row].append(violation)
        for cell in violation.cells():
            self._by_cell[cell].append(violation)

    def add(self, violation: Violation) -> None:
        self._violations.append(violation)
        self._register(violation)

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._violations)

    def __bool__(self) -> bool:
        return bool(self._violations)

    def __iter__(self) -> Iterator[Violation]:
        return iter(self._violations)

    def for_constraint(self, name: str) -> list[Violation]:
        return list(self._by_constraint.get(name, ()))

    def for_row(self, row: int) -> list[Violation]:
        return list(self._by_row.get(row, ()))

    def for_cell(self, cell: CellRef) -> list[Violation]:
        return list(self._by_cell.get(cell, ()))

    def constraints_violated(self) -> list[str]:
        return sorted(self._by_constraint)

    def rows_involved(self) -> list[int]:
        return sorted(self._by_row)

    def cells_involved(self) -> list[CellRef]:
        return sorted(self._by_cell, key=lambda c: (c.row, c.attribute))

    def count_by_constraint(self) -> dict[str, int]:
        return {name: len(violations) for name, violations in self._by_constraint.items()}

    def count_for_cell(self, cell: CellRef) -> int:
        return len(self._by_cell.get(cell, ()))


def _violations_single_tuple(table: Table, constraint: DenialConstraint) -> Iterator[Violation]:
    for row_id in range(table.n_rows):
        row = table.row(row_id)
        if constraint.is_violated_by(row):
            yield Violation(constraint, (row_id,))


def _violations_two_tuple(table: Table, constraint: DenialConstraint) -> Iterator[Violation]:
    equality_attributes = constraint.equality_attributes()
    rows_cache = [table.row(i) for i in range(table.n_rows)]

    if equality_attributes:
        index = MultiColumnIndex(table.store, equality_attributes)
        groups = [rows for _, rows in index.groups() if len(rows) > 1]
    else:
        groups = [list(range(table.n_rows))]

    for group in groups:
        for position, row_i in enumerate(group):
            for row_j in group[position + 1 :]:
                if constraint.is_violated_by(rows_cache[row_i], rows_cache[row_j]):
                    yield Violation(constraint, (row_i, row_j))
                if constraint.is_violated_by(rows_cache[row_j], rows_cache[row_i]):
                    yield Violation(constraint, (row_j, row_i))


def find_violations(table: Table, constraint: DenialConstraint) -> list[Violation]:
    """All violations of a single constraint on ``table``.

    For two-tuple constraints both orders of each violating pair are reported
    (the DC quantifies over ordered pairs); symmetric constraints therefore
    report each unordered pair twice, which keeps per-tuple violation counts
    consistent across constraint shapes.
    """
    if constraint.is_single_tuple:
        return list(_violations_single_tuple(table, constraint))
    return list(_violations_two_tuple(table, constraint))


def find_all_violations(table: Table, constraints: Sequence[DenialConstraint]) -> ViolationSet:
    """Violations of every constraint in ``constraints`` on ``table``."""
    result = ViolationSet()
    for constraint in constraints:
        for violation in find_violations(table, constraint):
            result.add(violation)
    return result


def violating_rows(table: Table, constraints: Sequence[DenialConstraint]) -> set[int]:
    """Row ids participating in at least one violation."""
    return set(find_all_violations(table, constraints).rows_involved())


def cells_in_violations(table: Table, constraints: Sequence[DenialConstraint]) -> set[CellRef]:
    """Cell addresses participating in at least one violation."""
    return set(find_all_violations(table, constraints).cells_involved())


def is_clean(table: Table, constraints: Sequence[DenialConstraint]) -> bool:
    """True when the table satisfies every constraint."""
    for constraint in constraints:
        if find_violations(table, constraint):
            return False
    return True
