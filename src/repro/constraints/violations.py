"""Violation detection engine — the full-rescan reference path.

Given a table and a set of denial constraints, find every violating tuple
(pair).  Two-tuple constraints with at least one ``t1.A == t2.A`` predicate
are evaluated with hash partitioning on those attributes (only rows sharing
the equality key can violate); other constraints fall back to a pair scan.

The detector is used by every repair algorithm and — indirectly, through the
black-box oracle — by every Shapley evaluation, so it is the hottest code
path of the library.  The Shapley hot path therefore runs on the *incremental*
engine instead (:mod:`repro.constraints.incremental`), which maintains
violations under sparse cell deltas; the functions here remain the
from-scratch reference implementation that the incremental path is
cross-checked against, and the fallback for everything that is not a
:class:`~repro.dataset.table.PerturbationView`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.constraints.dc import DenialConstraint
from repro.dataset.table import CellRef, Table
from repro.engine.index import MultiColumnIndex


@dataclass(frozen=True)
class Violation:
    """One violation: a constraint plus the (ordered) rows that trigger it."""

    constraint: DenialConstraint
    rows: tuple[int, ...]

    @property
    def row1(self) -> int:
        return self.rows[0]

    @property
    def row2(self) -> int | None:
        return self.rows[1] if len(self.rows) > 1 else None

    def cells(self) -> list[CellRef]:
        """Cells referenced by the constraint's predicates for these rows."""
        return self.constraint.cells_involved(self.row1, self.row2)

    def __str__(self) -> str:
        row_text = ", ".join(f"t{r + 1}" for r in self.rows)
        return f"{self.constraint.name}({row_text})"


class ViolationSet:
    """All violations of a constraint set on one table snapshot.

    The per-constraint / per-row / per-cell lookup indexes are built lazily on
    first query: the hot path (incremental detection inside the Shapley
    sampling loop) only ever iterates and counts, so it never pays for them.
    """

    def __init__(self, violations: Iterable[Violation] = ()):
        self._violations: list[Violation] = list(violations)
        self._by_constraint: dict[str, list[Violation]] | None = None
        self._by_row: dict[int, list[Violation]] | None = None
        self._by_cell: dict[CellRef, list[Violation]] | None = None

    def _register(self, violation: Violation) -> None:
        self._by_constraint[violation.constraint.name].append(violation)
        for row in set(violation.rows):
            self._by_row[row].append(violation)
        for cell in violation.cells():
            self._by_cell[cell].append(violation)

    def _ensure_indexes(self) -> None:
        if self._by_constraint is None:
            self._by_constraint = defaultdict(list)
            self._by_row = defaultdict(list)
            self._by_cell = defaultdict(list)
            for violation in self._violations:
                self._register(violation)

    def add(self, violation: Violation) -> None:
        self._violations.append(violation)
        if self._by_constraint is not None:
            self._register(violation)

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._violations)

    def __bool__(self) -> bool:
        return bool(self._violations)

    def __iter__(self) -> Iterator[Violation]:
        return iter(self._violations)

    def for_constraint(self, name: str) -> list[Violation]:
        self._ensure_indexes()
        return list(self._by_constraint.get(name, ()))

    def for_row(self, row: int) -> list[Violation]:
        self._ensure_indexes()
        return list(self._by_row.get(row, ()))

    def for_cell(self, cell: CellRef) -> list[Violation]:
        self._ensure_indexes()
        return list(self._by_cell.get(cell, ()))

    def constraints_violated(self) -> list[str]:
        self._ensure_indexes()
        return sorted(self._by_constraint)

    def rows_involved(self) -> list[int]:
        self._ensure_indexes()
        return sorted(self._by_row)

    def cells_involved(self) -> list[CellRef]:
        self._ensure_indexes()
        return sorted(self._by_cell, key=lambda c: (c.row, c.attribute))

    def count_by_constraint(self) -> dict[str, int]:
        self._ensure_indexes()
        return {name: len(violations) for name, violations in self._by_constraint.items()}

    def count_for_cell(self, cell: CellRef) -> int:
        self._ensure_indexes()
        return len(self._by_cell.get(cell, ()))


def _violations_single_tuple(table: Table, constraint: DenialConstraint) -> Iterator[Violation]:
    for row_id in range(table.n_rows):
        row = table.row(row_id)
        if constraint.is_violated_by(row):
            yield Violation(constraint, (row_id,))


def lazy_row_reader(table: Table):
    """A memoised ``row_of(row_id) -> dict`` over ``table``.

    Row dicts are materialised lazily, on first use: equality-partitioned
    detection typically visits only the rows inside multi-row groups (and the
    incremental detector only the touched rows), so most rows never need a
    dict at all.
    """
    rows_cache: dict[int, dict] = {}
    table_row = table.row

    def row_of(row_id: int) -> dict:
        row = rows_cache.get(row_id)
        if row is None:
            row = rows_cache[row_id] = table_row(row_id)
        return row

    return row_of


def _violations_two_tuple(table: Table, constraint: DenialConstraint,
                          row_of=None) -> Iterator[Violation]:
    equality_attributes = constraint.equality_attributes()

    if equality_attributes:
        index = MultiColumnIndex(table.store, equality_attributes)
        groups = [rows for _, rows in index.groups() if len(rows) > 1]
    else:
        groups = [list(range(table.n_rows))]

    if row_of is None:
        row_of = lazy_row_reader(table)

    for group in groups:
        for position, row_i in enumerate(group):
            row_data_i = row_of(row_i)
            for row_j in group[position + 1 :]:
                row_data_j = row_of(row_j)
                if constraint.is_violated_by(row_data_i, row_data_j):
                    yield Violation(constraint, (row_i, row_j))
                if constraint.is_violated_by(row_data_j, row_data_i):
                    yield Violation(constraint, (row_j, row_i))


def find_violations(table: Table, constraint: DenialConstraint,
                    row_of=None) -> list[Violation]:
    """All violations of a single constraint on ``table``.

    For two-tuple constraints both orders of each violating pair are reported
    (the DC quantifies over ordered pairs); symmetric constraints therefore
    report each unordered pair twice, which keeps per-tuple violation counts
    consistent across constraint shapes.

    ``row_of`` optionally supplies a shared ``row_id -> dict`` reader so
    callers evaluating many near-identical instances (the paired oracle's
    with/without walks) can reuse one row cache instead of rebuilding it per
    instance; it must reflect the current contents of ``table``.
    """
    if constraint.is_single_tuple:
        return list(_violations_single_tuple(table, constraint))
    return list(_violations_two_tuple(table, constraint, row_of=row_of))


def find_all_violations(table: Table, constraints: Sequence[DenialConstraint]) -> ViolationSet:
    """Violations of every constraint in ``constraints`` on ``table``."""
    result = ViolationSet()
    for constraint in constraints:
        for violation in find_violations(table, constraint):
            result.add(violation)
    return result


def violating_rows(table: Table, constraints: Sequence[DenialConstraint]) -> set[int]:
    """Row ids participating in at least one violation."""
    return set(find_all_violations(table, constraints).rows_involved())


def cells_in_violations(table: Table, constraints: Sequence[DenialConstraint]) -> set[CellRef]:
    """Cell addresses participating in at least one violation."""
    return set(find_all_violations(table, constraints).cells_involved())


def is_clean(table: Table, constraints: Sequence[DenialConstraint]) -> bool:
    """True when the table satisfies every constraint."""
    for constraint in constraints:
        if find_violations(table, constraint):
            return False
    return True
