"""Predicates: the atoms of denial constraints.

A predicate compares a cell of tuple ``t1`` or ``t2`` against either a cell
of (possibly the other) tuple or a constant, using one of the six comparison
operators.  Null semantics follow SQL: a comparison involving a null cell is
never satisfied, so a nulled-out cell can never *contribute* to a violation —
this is exactly what the paper's coalition semantics for cell Shapley values
requires (cells outside the coalition are null and therefore inert).
"""

from __future__ import annotations

import enum
import operator as _operator
from dataclasses import dataclass
from typing import Any, Mapping

from repro.engine.storage import is_null
from repro.errors import ConstraintError

#: Symbol used to refer to the first / second tuple of a two-tuple constraint.
TUPLE_1 = "t1"
TUPLE_2 = "t2"
_VALID_TUPLES = (TUPLE_1, TUPLE_2)


class Operator(enum.Enum):
    """Comparison operators allowed in denial-constraint predicates."""

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    @property
    def python_operator(self):
        return _PYTHON_OPERATORS[self]

    def negate(self) -> "Operator":
        """The operator expressing the logical negation of this one."""
        return {
            Operator.EQ: Operator.NE,
            Operator.NE: Operator.EQ,
            Operator.LT: Operator.GE,
            Operator.LE: Operator.GT,
            Operator.GT: Operator.LE,
            Operator.GE: Operator.LT,
        }[self]

    def flip(self) -> "Operator":
        """The operator obtained by swapping the two operands."""
        return {
            Operator.EQ: Operator.EQ,
            Operator.NE: Operator.NE,
            Operator.LT: Operator.GT,
            Operator.LE: Operator.GE,
            Operator.GT: Operator.LT,
            Operator.GE: Operator.LE,
        }[self]

    def evaluate(self, left: Any, right: Any) -> bool:
        """Apply the operator with null-aware semantics.

        A null cell never *equals* anything and never satisfies an order
        comparison, but it does *differ* from a concrete value (``!=`` is
        satisfied between a null and a non-null operand).  This asymmetry is
        what the paper's cell-coalition semantics needs: blanking out a dirty
        cell must not create spurious equality matches, yet a repair
        algorithm must still be able to notice that the blank disagrees with
        the values around it and repair it.
        """
        left_null, right_null = is_null(left), is_null(right)
        if left_null or right_null:
            if self is Operator.NE:
                return not (left_null and right_null)
            return False
        try:
            return bool(self.python_operator(left, right))
        except TypeError:
            # incomparable types (e.g. str vs int after a typo): fall back to
            # string comparison for the order operators, equality is False.
            if self in (Operator.EQ,):
                return False
            if self in (Operator.NE,):
                return True
            return bool(self.python_operator(str(left), str(right)))

    @classmethod
    def from_symbol(cls, symbol: str) -> "Operator":
        symbol = symbol.strip()
        aliases = {
            "=": cls.EQ, "==": cls.EQ,
            "!=": cls.NE, "<>": cls.NE, "≠": cls.NE,
            "<": cls.LT, "<=": cls.LE, "≤": cls.LE,
            ">": cls.GT, ">=": cls.GE, "≥": cls.GE,
        }
        if symbol not in aliases:
            raise ConstraintError(f"unknown comparison operator {symbol!r}")
        return aliases[symbol]

    def __str__(self) -> str:
        return self.value


#: Operator → python comparison function, materialised once (the property is
#: on the hot path of violation detection).
_PYTHON_OPERATORS = {
    Operator.EQ: _operator.eq,
    Operator.NE: _operator.ne,
    Operator.LT: _operator.lt,
    Operator.LE: _operator.le,
    Operator.GT: _operator.gt,
    Operator.GE: _operator.ge,
}


@dataclass(frozen=True)
class Operand:
    """One side of a predicate: either ``<tuple>.<attribute>`` or a constant."""

    tuple_name: str | None  # "t1", "t2", or None for a constant
    attribute: str | None
    constant: Any = None

    @classmethod
    def cell(cls, tuple_name: str, attribute: str) -> "Operand":
        if tuple_name not in _VALID_TUPLES:
            raise ConstraintError(f"tuple name must be one of {_VALID_TUPLES}, got {tuple_name!r}")
        if not attribute:
            raise ConstraintError("attribute name must be non-empty")
        return cls(tuple_name=tuple_name, attribute=attribute)

    @classmethod
    def const(cls, value: Any) -> "Operand":
        return cls(tuple_name=None, attribute=None, constant=value)

    @property
    def is_constant(self) -> bool:
        return self.tuple_name is None

    def resolve(self, assignment: Mapping[str, Mapping[str, Any]]) -> Any:
        """Look up the operand's value given tuple assignments ``{"t1": row, "t2": row}``."""
        if self.is_constant:
            return self.constant
        row = assignment.get(self.tuple_name)
        if row is None:
            raise ConstraintError(f"no assignment for tuple {self.tuple_name!r}")
        if self.attribute not in row:
            raise ConstraintError(
                f"attribute {self.attribute!r} missing from assignment of {self.tuple_name!r}"
            )
        return row[self.attribute]

    def __str__(self) -> str:
        if self.is_constant:
            return repr(self.constant)
        return f"{self.tuple_name}.{self.attribute}"


@dataclass(frozen=True)
class Predicate:
    """A comparison between two operands, e.g. ``t1.City != t2.City``."""

    left: Operand
    op: Operator
    right: Operand

    # -- constructors -----------------------------------------------------------

    @classmethod
    def between_tuples(cls, attr1: str, op: Operator | str, attr2: str | None = None) -> "Predicate":
        """Predicate ``t1.attr1 <op> t2.attr2`` (attr2 defaults to attr1)."""
        if isinstance(op, str):
            op = Operator.from_symbol(op)
        return cls(Operand.cell(TUPLE_1, attr1), op, Operand.cell(TUPLE_2, attr2 or attr1))

    @classmethod
    def with_constant(cls, tuple_name: str, attribute: str, op: Operator | str, value: Any) -> "Predicate":
        """Predicate ``<tuple>.<attribute> <op> <constant>``."""
        if isinstance(op, str):
            op = Operator.from_symbol(op)
        return cls(Operand.cell(tuple_name, attribute), op, Operand.const(value))

    # -- introspection ------------------------------------------------------------

    @property
    def is_single_tuple(self) -> bool:
        """True when the predicate only mentions ``t1`` (and constants)."""
        tuples = self.tuples_mentioned()
        return tuples <= {TUPLE_1}

    def tuples_mentioned(self) -> set[str]:
        names = set()
        for operand in (self.left, self.right):
            if not operand.is_constant:
                names.add(operand.tuple_name)
        return names

    def attributes_mentioned(self) -> set[str]:
        return {
            operand.attribute
            for operand in (self.left, self.right)
            if not operand.is_constant
        }

    def attributes_of(self, tuple_name: str) -> set[str]:
        """Attributes of a specific tuple mentioned by this predicate."""
        return {
            operand.attribute
            for operand in (self.left, self.right)
            if not operand.is_constant and operand.tuple_name == tuple_name
        }

    @property
    def is_equality_join(self) -> bool:
        """True for ``t1.A == t2.A`` style predicates (hash-partitionable)."""
        return (
            self.op is Operator.EQ
            and not self.left.is_constant
            and not self.right.is_constant
            and self.left.tuple_name != self.right.tuple_name
            and self.left.attribute == self.right.attribute
        )

    # -- evaluation ------------------------------------------------------------------

    def evaluate(self, row1: Mapping[str, Any], row2: Mapping[str, Any] | None = None) -> bool:
        """Evaluate the predicate on an assignment of ``t1`` (and ``t2``)."""
        assignment = {TUPLE_1: row1, TUPLE_2: row2 if row2 is not None else row1}
        left_value = self.left.resolve(assignment)
        right_value = self.right.resolve(assignment)
        return self.op.evaluate(left_value, right_value)

    def negated(self) -> "Predicate":
        return Predicate(self.left, self.op.negate(), self.right)

    def flipped(self) -> "Predicate":
        """Swap the operands (and the operator direction accordingly)."""
        return Predicate(self.right, self.op.flip(), self.left)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"
