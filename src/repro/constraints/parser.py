"""Textual denial-constraint syntax.

The parser accepts a small ASCII language mirroring the paper's notation:

    not(t1.Team == t2.Team and t1.City != t2.City)

Grammar (informal)::

    dc         := ["forall" quantifiers "."] "not" "(" predicate ("and" predicate)* ")"
    predicate  := operand op operand
    operand    := ("t1" | "t2") "." attribute | constant
    op         := "==" | "=" | "!=" | "<>" | "<=" | ">=" | "<" | ">"
    constant   := quoted string | integer | float

Unicode forms (``∀``, ``¬``, ``∧``, ``≠``, ``≤``, ``≥``) are normalised to the
ASCII equivalents before parsing, so constraints can be copied out of the
paper nearly verbatim.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Sequence

from repro.constraints.dc import DenialConstraint
from repro.constraints.predicates import Operand, Operator, Predicate
from repro.errors import ConstraintParseError

#: Replacements applied before tokenisation so the unicode notation of the
#: paper parses directly.
_NORMALISATIONS = (
    ("∀", "forall "),
    ("¬", "not"),
    ("∧", " and "),
    ("&&", " and "),
    ("&", " and "),
    ("≠", "!="),
    ("≤", "<="),
    ("≥", ">="),
    ("[", "."),
    ("]", ""),
)

_OPERATOR_PATTERN = re.compile(r"(==|!=|<>|<=|>=|=|<|>)")
_CELL_PATTERN = re.compile(r"^(t1|t2)\s*\.\s*([A-Za-z_][A-Za-z0-9_ ]*)$")
_QUANTIFIER_PATTERN = re.compile(r"^forall[^.]*\.\s*", re.IGNORECASE)


def _normalise(text: str) -> str:
    result = text.strip()
    for old, new in _NORMALISATIONS:
        result = result.replace(old, new)
    return re.sub(r"\s+", " ", result).strip()


def _parse_constant(token: str) -> Any:
    token = token.strip()
    if len(token) >= 2 and token[0] == token[-1] and token[0] in ("'", '"'):
        return token[1:-1]
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _parse_operand(token: str, source: str) -> Operand:
    token = token.strip()
    match = _CELL_PATTERN.match(token)
    if match:
        tuple_name, attribute = match.group(1), match.group(2).strip()
        return Operand.cell(tuple_name, attribute)
    if not token:
        raise ConstraintParseError(source, "empty operand")
    return Operand.const(_parse_constant(token))


def _parse_predicate(text: str, source: str) -> Predicate:
    parts = _OPERATOR_PATTERN.split(text, maxsplit=1)
    if len(parts) != 3:
        raise ConstraintParseError(source, f"cannot find a comparison operator in {text!r}")
    left_text, op_symbol, right_text = parts
    operator = Operator.from_symbol(op_symbol)
    left = _parse_operand(left_text, source)
    right = _parse_operand(right_text, source)
    if left.is_constant and right.is_constant:
        raise ConstraintParseError(source, f"predicate {text!r} compares two constants")
    return Predicate(left, operator, right)


def parse_dc(text: str, name: str = "DC", description: str = "") -> DenialConstraint:
    """Parse one denial constraint from its textual form.

    Parameters
    ----------
    text:
        The constraint, e.g. ``"not(t1.City == t2.City and t1.Country != t2.Country)"``
        or the unicode form used in the paper.
    name:
        Name given to the resulting constraint (``"C1"`` etc.).
    description:
        Optional human-readable description carried along.
    """
    original = text
    normalised = _normalise(text)
    normalised = _QUANTIFIER_PATTERN.sub("", normalised)
    lowered = normalised.lower()
    if not lowered.startswith("not"):
        raise ConstraintParseError(original, "a denial constraint must start with 'not(' or '¬('")
    body = normalised[3:].strip()
    if not body.startswith("(") or not body.endswith(")"):
        raise ConstraintParseError(original, "the negated conjunction must be parenthesised")
    body = body[1:-1].strip()
    if not body:
        raise ConstraintParseError(original, "empty conjunction")
    predicate_texts = re.split(r"\s+and\s+", body, flags=re.IGNORECASE)
    predicates = [_parse_predicate(part, original) for part in predicate_texts]
    return DenialConstraint(name=name, predicates=predicates, description=description)


def parse_dcs(texts: Sequence[str] | Iterable[str], prefix: str = "C") -> list[DenialConstraint]:
    """Parse several constraints, auto-naming them ``C1, C2, ...``."""
    return [parse_dc(text, name=f"{prefix}{index + 1}") for index, text in enumerate(texts)]


def format_dc(constraint: DenialConstraint, unicode_symbols: bool = False) -> str:
    """Render a constraint back to text.

    With ``unicode_symbols=True`` the output matches the paper's notation
    (``∀ t1, t2. ¬(t1[City] = t2[City] ∧ ...)``); the default ASCII output can
    be re-parsed by :func:`parse_dc`.
    """
    parts = []
    for predicate in constraint.predicates:
        left, op, right = str(predicate.left), predicate.op.value, str(predicate.right)
        if unicode_symbols:
            op = {"==": "=", "!=": "≠", "<=": "≤", ">=": "≥"}.get(op, op)
            left = re.sub(r"^(t[12])\.(.+)$", r"\1[\2]", left)
            right = re.sub(r"^(t[12])\.(.+)$", r"\1[\2]", right)
        parts.append(f"{left} {op} {right}")
    if unicode_symbols:
        quantified = "∀t1, t2. " if constraint.arity == 2 else "∀t1. "
        return f"{quantified}¬({' ∧ '.join(parts)})"
    return f"not({' and '.join(parts)})"
