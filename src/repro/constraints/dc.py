"""Denial constraints.

A :class:`DenialConstraint` is the conjunction of predicates under a negation
and a universal quantifier over one or two tuple variables:

    ∀ t1, t2 ∈ T . ¬( p_1 ∧ ... ∧ p_k )

The constraint is *violated* by a tuple pair that satisfies every predicate
simultaneously.  Functional dependencies, the constraints of Figure 1 and the
order constraints of the DC literature are all expressible in this form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.constraints.predicates import Operator, Predicate, TUPLE_1, TUPLE_2
from repro.errors import ConstraintError


@dataclass(frozen=True)
class DenialConstraint:
    """An immutable denial constraint with a stable name.

    Parameters
    ----------
    name:
        Identifier used in explanations and reports ("C1", "C2", ...).
    predicates:
        The conjuncts under the negation.  At least one is required.
    description:
        Optional human-readable gloss (e.g. "two tuples with the same team
        must be in the same city").
    """

    name: str
    predicates: tuple[Predicate, ...]
    description: str = ""

    def __init__(self, name: str, predicates: Sequence[Predicate], description: str = ""):
        if not name:
            raise ConstraintError("a denial constraint needs a non-empty name")
        predicates = tuple(predicates)
        if not predicates:
            raise ConstraintError(f"constraint {name!r} has no predicates")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "predicates", predicates)
        object.__setattr__(self, "description", description)
        # cached structural facts (violation detection asks for these on every
        # tuple-pair check, so they are computed once here)
        object.__setattr__(
            self, "_single_tuple", all(p.is_single_tuple for p in predicates)
        )
        # constraints key the incremental detector's state dicts, so the deep
        # (name, predicates) hash is computed once up front
        object.__setattr__(self, "_hash", hash((name, predicates)))

    # -- structure ----------------------------------------------------------------

    @property
    def is_single_tuple(self) -> bool:
        """True when every predicate only mentions ``t1``."""
        return self._single_tuple

    @property
    def arity(self) -> int:
        return 1 if self.is_single_tuple else 2

    def attributes(self) -> set[str]:
        """All attributes mentioned anywhere in the constraint."""
        mentioned: set[str] = set()
        for predicate in self.predicates:
            mentioned |= predicate.attributes_mentioned()
        return mentioned

    def equality_attributes(self) -> tuple[str, ...]:
        """Attributes compared with ``t1.A == t2.A`` — usable for hash partitioning."""
        return tuple(
            sorted(
                predicate.left.attribute
                for predicate in self.predicates
                if predicate.is_equality_join
            )
        )

    def inequality_attributes(self) -> tuple[str, ...]:
        """Attributes compared with ``!=`` between the two tuples.

        For FD-style constraints these are the "right hand side" attributes —
        the ones a repair algorithm typically modifies to resolve a violation.
        """
        result = []
        for predicate in self.predicates:
            if (
                predicate.op is Operator.NE
                and not predicate.left.is_constant
                and not predicate.right.is_constant
                and predicate.left.tuple_name != predicate.right.tuple_name
            ):
                result.append(predicate.left.attribute)
        return tuple(sorted(set(result)))

    def predicates_on(self, attribute: str) -> tuple[Predicate, ...]:
        return tuple(p for p in self.predicates if attribute in p.attributes_mentioned())

    # -- semantics ---------------------------------------------------------------

    def is_violated_by(self, row1: Mapping[str, Any], row2: Mapping[str, Any] | None = None) -> bool:
        """True if the tuple assignment satisfies *all* predicates.

        For two-tuple constraints ``row2`` must be provided (the pair
        ``(row1, row2)`` is checked in that order; callers enumerate both
        orders).  For single-tuple constraints ``row2`` is ignored.
        """
        if self.arity == 2 and row2 is None:
            raise ConstraintError(
                f"constraint {self.name} compares two tuples but only one row was given"
            )
        return all(predicate.evaluate(row1, row2) for predicate in self.predicates)

    def cells_involved(self, row1_id: int, row2_id: int | None = None):
        """Cell addresses touched by a violation between the given rows.

        Returns a list of ``(row_id, attribute)`` pairs; used by T-REx to
        report which cells participate in each violation.
        """
        from repro.dataset.table import CellRef

        cells: list[CellRef] = []
        for predicate in self.predicates:
            for operand in (predicate.left, predicate.right):
                if operand.is_constant:
                    continue
                if operand.tuple_name == TUPLE_1:
                    cells.append(CellRef(row1_id, operand.attribute))
                elif operand.tuple_name == TUPLE_2 and row2_id is not None:
                    cells.append(CellRef(row2_id, operand.attribute))
        seen: set = set()
        unique: list[CellRef] = []
        for cell in cells:
            if cell not in seen:
                seen.add(cell)
                unique.append(cell)
        return unique

    # -- derived forms --------------------------------------------------------------

    def renamed(self, name: str) -> "DenialConstraint":
        return DenialConstraint(name, self.predicates, self.description)

    def with_description(self, description: str) -> "DenialConstraint":
        return DenialConstraint(self.name, self.predicates, description)

    # -- dunder -----------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DenialConstraint):
            return NotImplemented
        return self.name == other.name and self.predicates == other.predicates

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        body = " and ".join(str(p) for p in self.predicates)
        quantifier = "forall t1, t2" if self.arity == 2 else "forall t1"
        return f"{self.name}: {quantifier}. not({body})"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DenialConstraint({self.name!r}, {len(self.predicates)} predicates)"


def constraint_set_names(constraints: Iterable[DenialConstraint]) -> tuple[str, ...]:
    """Stable, order-preserving tuple of constraint names (used as cache keys)."""
    return tuple(constraint.name for constraint in constraints)
