"""Shapley values of denial constraints (Section 2.2, first adaptation).

The players are the denial constraints; the characteristic function of a
constraint subset ``S`` is the binary repair oracle evaluated with that
subset and the unchanged dirty table:

    v(S) = Alg|t[A](S, T^d)

Because the number of constraints is small, the exact enumeration engine is
the default; a permutation-sampling estimate is available for large
constraint sets (and is what the scaling benchmark E7 compares against).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.constraints.dc import DenialConstraint
from repro.repair.base import BinaryRepairOracle
from repro.shapley.exact import exact_shapley
from repro.shapley.game import CallableGame, CooperativeGame, ShapleyResult
from repro.shapley.permutation import permutation_shapley


class ConstraintRepairGame(CooperativeGame):
    """The cooperative game with denial constraints as players."""

    def __init__(self, oracle: BinaryRepairOracle):
        self.oracle = oracle
        self._by_name = {constraint.name: constraint for constraint in oracle.constraints}
        self._players = tuple(self._by_name)

    @property
    def players(self) -> tuple[str, ...]:
        return self._players

    def constraints_for(self, names: Iterable[str]) -> list[DenialConstraint]:
        """Resolve constraint names back to constraint objects (input order)."""
        wanted = set(names)
        return [self._by_name[name] for name in self._players if name in wanted]

    def value(self, coalition: frozenset) -> float:
        subset = self.constraints_for(coalition)
        return float(self.oracle.query_constraint_subset(subset))


class ConstraintShapleyExplainer:
    """Compute and rank the contribution of each DC to one cell's repair.

    Parameters
    ----------
    oracle:
        A :class:`~repro.repair.base.BinaryRepairOracle` bound to the repair
        algorithm, the full constraint set, the dirty table and the cell of
        interest.
    """

    def __init__(self, oracle: BinaryRepairOracle):
        self.oracle = oracle
        self.game = ConstraintRepairGame(oracle)

    # -- exact ---------------------------------------------------------------------

    def explain(self, constraints: Sequence[str] | None = None) -> ShapleyResult:
        """Exact Shapley value per constraint name (the paper's method for DCs)."""
        return exact_shapley(self.game, players=constraints)

    # -- sampled -------------------------------------------------------------------

    def explain_sampled(self, n_permutations: int = 200, rng=None,
                        antithetic: bool = False) -> ShapleyResult:
        """Permutation-sampling estimate, for large constraint sets."""
        return permutation_shapley(
            self.game, n_permutations=n_permutations, rng=rng, antithetic=antithetic
        )

    # -- refinements -------------------------------------------------------------------

    def explain_interactions(self) -> dict[frozenset, float]:
        """Pairwise Shapley interaction indices of the constraints.

        Positive for complementary pairs (the paper's {C1, C2}), negative for
        substitutes, zero for unrelated constraints.
        """
        from repro.shapley.interaction import all_pairwise_interactions

        return all_pairwise_interactions(self.game)

    def explain_banzhaf(self) -> ShapleyResult:
        """Banzhaf values of the constraints (robustness check of the ranking)."""
        from repro.shapley.interaction import banzhaf_values

        return banzhaf_values(self.game)

    # -- conveniences ------------------------------------------------------------------

    def ranking(self, result: ShapleyResult | None = None) -> list[tuple[str, float]]:
        """Constraints ranked from most to least influential."""
        result = result if result is not None else self.explain()
        return result.ranking()

    def as_game(self) -> CooperativeGame:
        """Expose the underlying game (used by benches and tests)."""
        return self.game

    def minimal_winning_subsets(self, max_size: int | None = None) -> list[frozenset]:
        """Enumerate minimal constraint subsets that repair the cell of interest.

        This mirrors the way the paper narrates Example 2.3 ("Algorithm 1 will
        repair t5[C] only if we have the DCs {C1, C2}, or {C3}").  Exponential
        in the number of constraints, so only used for reporting on small sets.
        """
        from itertools import combinations

        players = self.game.players
        limit = max_size if max_size is not None else len(players)
        winning: list[frozenset] = []
        for size in range(limit + 1):
            for combo in combinations(players, size):
                candidate = frozenset(combo)
                if any(existing <= candidate for existing in winning):
                    continue
                if self.game.value(candidate) >= 1.0:
                    winning.append(candidate)
        return winning


def constraint_shapley_from_subsets(
    players: Sequence[str], winning_subsets: Iterable[frozenset]
) -> ShapleyResult:
    """Exact Shapley values of the binary game defined by minimal winning subsets.

    Independent of any oracle — used to cross-validate the end-to-end pipeline
    against the closed-form reasoning in the paper's Example 2.3.
    """
    winning = [frozenset(subset) for subset in winning_subsets]

    def value(coalition: frozenset) -> float:
        return 1.0 if any(subset <= coalition for subset in winning) else 0.0

    return exact_shapley(CallableGame(tuple(players), value))
