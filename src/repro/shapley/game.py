"""Cooperative games.

A cooperative game is a finite player set ``N`` and a characteristic function
``v : 2^N → R`` with ``v(∅) = 0``.  The Shapley value of player ``a`` is

    Shap(N, v, a) = Σ_{S ⊆ N\\{a}}  |S|! (|N| - |S| - 1)! / |N|!  · (v(S ∪ {a}) − v(S))

T-REx instantiates two such games (constraints as players with the table
fixed, and cells as players with the constraints fixed); the generic engines
in :mod:`repro.shapley.exact` and :mod:`repro.shapley.permutation` work for
any game expressed through the :class:`CooperativeGame` interface.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Mapping, Sequence

from repro.errors import TRexError

Player = Hashable


class CooperativeGame(abc.ABC):
    """Abstract cooperative game: a player list plus a characteristic function."""

    @property
    @abc.abstractmethod
    def players(self) -> tuple[Player, ...]:
        """The ordered player set ``N``."""

    @abc.abstractmethod
    def value(self, coalition: frozenset[Player]) -> float:
        """The characteristic function ``v(coalition)``.

        Implementations must satisfy ``value(frozenset()) == 0`` for the
        Shapley axioms (efficiency in particular) to carry their usual
        interpretation; the engines do not enforce it.
        """

    @property
    def n_players(self) -> int:
        return len(self.players)

    def grand_coalition_value(self) -> float:
        return self.value(frozenset(self.players))


class CallableGame(CooperativeGame):
    """Adapter building a game from a player list and a plain function."""

    def __init__(self, players: Sequence[Player], value_function: Callable[[frozenset], float]):
        players = tuple(players)
        if len(set(players)) != len(players):
            raise TRexError(f"duplicate players in game: {players}")
        self._players = players
        self._value_function = value_function

    @property
    def players(self) -> tuple[Player, ...]:
        return self._players

    def value(self, coalition: frozenset[Player]) -> float:
        return float(self._value_function(frozenset(coalition)))


class MemoisedGame(CooperativeGame):
    """Wrap another game and memoise its characteristic function.

    The exact Shapley formula evaluates many coalitions repeatedly (once per
    player whose marginal contribution involves that coalition); memoisation
    makes the evaluation count exactly ``2^n`` instead of ``n · 2^(n-1)``.
    """

    def __init__(self, inner: CooperativeGame):
        self._inner = inner
        self._cache: dict[frozenset, float] = {}
        self.evaluations = 0

    @property
    def players(self) -> tuple[Player, ...]:
        return self._inner.players

    def value(self, coalition: frozenset[Player]) -> float:
        key = frozenset(coalition)
        if key not in self._cache:
            self._cache[key] = self._inner.value(key)
            self.evaluations += 1
        return self._cache[key]


@dataclass
class ShapleyResult:
    """Shapley values for every player, with optional uncertainty estimates.

    Attributes
    ----------
    values:
        Player → Shapley value.
    standard_errors:
        Player → standard error of the estimate (empty for exact methods).
    n_samples:
        Number of Monte-Carlo samples used (0 for exact methods).
    n_evaluations:
        Number of characteristic-function evaluations performed.
    method:
        Human-readable name of the computation method.
    completed:
        ``False`` when a wall-clock deadline expired before the sampling
        plan finished — the values are the merged *partial* estimates
        (``n_samples`` says how much sampling actually happened).  Exact
        methods and runs without a deadline are always ``True``.
    """

    values: dict[Player, float]
    standard_errors: dict[Player, float] = field(default_factory=dict)
    n_samples: int = 0
    n_evaluations: int = 0
    method: str = "exact"
    completed: bool = True

    def __getitem__(self, player: Player) -> float:
        return self.values[player]

    def __contains__(self, player: Player) -> bool:
        return player in self.values

    def __len__(self) -> int:
        return len(self.values)

    def total(self) -> float:
        """Sum of all Shapley values (equals ``v(N) − v(∅)`` for exact methods)."""
        return float(sum(self.values.values()))

    def ranking(self) -> list[tuple[Player, float]]:
        """Players sorted by decreasing value (ties broken by player repr)."""
        return sorted(self.values.items(), key=lambda item: (-item[1], repr(item[0])))

    def top(self, k: int = 1) -> list[Player]:
        return [player for player, _ in self.ranking()[:k]]

    def normalised(self) -> dict[Player, float]:
        """Values rescaled to sum to 1 (unchanged if the total is 0)."""
        total = self.total()
        if total == 0:
            return dict(self.values)
        return {player: value / total for player, value in self.values.items()}

    def as_mapping(self) -> Mapping[Player, float]:
        return dict(self.values)


def shapley_weight(coalition_size: int, n_players: int) -> float:
    """The combinatorial weight ``|S|! (n − |S| − 1)! / n!`` of one coalition."""
    if not 0 <= coalition_size <= n_players - 1:
        raise TRexError(
            f"coalition size {coalition_size} out of range for {n_players} players"
        )
    import math

    return (
        math.factorial(coalition_size)
        * math.factorial(n_players - coalition_size - 1)
        / math.factorial(n_players)
    )


def validate_players(game: CooperativeGame, players: Iterable[Player] | None) -> tuple[Player, ...]:
    """Resolve an optional player subset against the game's player list."""
    if players is None:
        return game.players
    players = tuple(players)
    unknown = [p for p in players if p not in game.players]
    if unknown:
        raise TRexError(f"unknown players requested: {unknown}")
    return players
