"""Shapley values of table cells (Section 2.2, second adaptation).

The players are the cells of the dirty table and the constraint set stays
fixed; since a table has far too many cells for exact enumeration, the
estimator of Example 2.5 (permutation sampling with column-distribution
replacements, :mod:`repro.shapley.sampling`) is used.  An exact enumerator is
also provided for tiny tables so the estimator can be validated.

By default each sampled instance is evaluated on the incremental engine: the
coalition is a sparse copy-on-write delta on the dirty table and the
with/without pair a one-cell sub-delta, so the repair oracle's violation
detection is delta-maintained instead of rescanning (see
:mod:`repro.constraints.incremental`).  ``incremental=False`` restores the
materialised full-rescan reference path with bit-identical estimates.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.config import DEFAULT_CELL_SAMPLES, make_rng
from repro.constraints.dc import DenialConstraint
from repro.dataset.table import CellRef, Table
from repro.observability import trace as otrace
from repro.observability.trace import coordinate_span_id
from repro.repair.base import BinaryRepairOracle
from repro.shapley.convergence import RunningMean
from repro.shapley.game import ShapleyResult, shapley_weight
from repro.shapley.sampling import CellCoalitionSampler, ReplacementPolicy, SampledShapleyEstimate

#: pairs drained per :meth:`BinaryRepairOracle.query_pairs` scheduled pass —
#: bounds peak memory at O(chunk x n_cells) live coalition views while still
#: giving the scheduler a whole window to dedup and group over; also the
#: default shard granularity of the parallel scheduler, so one shard drains
#: as one scheduled pass
BATCH_CHUNK_SIZE = 128


def relevant_cells(table: Table, constraints: Sequence[DenialConstraint],
                   cell_of_interest: CellRef) -> list[CellRef]:
    """Cells that can plausibly influence the repair of ``cell_of_interest``.

    A cell is considered relevant when its attribute is mentioned by at least
    one constraint or when it belongs to the same tuple as the cell of
    interest (repair rules often condition on sibling attributes).  This is
    purely a cost-saving pre-filter for choosing *which* cells to explain; it
    never changes the value computed for an explained cell.
    """
    constrained_attributes: set[str] = set()
    for constraint in constraints:
        constrained_attributes |= constraint.attributes()
    chosen = [
        cell
        for cell in table.cells()
        if cell.attribute in constrained_attributes or cell.row == cell_of_interest.row
    ]
    return chosen


class CellShapleyExplainer:
    """Estimate and rank the contribution of table cells to one cell's repair.

    Parameters
    ----------
    oracle:
        Binary repair oracle bound to the algorithm, constraint set, dirty
        table and cell of interest.
    policy:
        Replacement policy for out-of-coalition cells (default: the paper's
        column-distribution sampling).
    rng:
        Seed or generator; drives both the permutation and the replacement
        sampling.
    incremental:
        When ``True`` (default) every sampled coalition is evaluated as a
        sparse :class:`~repro.dataset.table.PerturbationView` delta on the
        dirty table, and the with/without pair as a one-cell sub-delta — the
        incremental engine's hot path.  ``False`` materialises full table
        copies instead.  Estimates are identical for a fixed seed; only the
        wall-clock differs.  Note this flag only governs the sampled
        instances built here; the oracle's own perturbations (cell-coalition
        and constraint-subset queries) follow the oracle's ``incremental``
        flag — construct the :class:`BinaryRepairOracle` with
        ``incremental=False`` as well to force the reference path end to end.
    paired:
        When ``True`` (default) each Monte-Carlo sample's with/without pair
        is submitted as one :meth:`BinaryRepairOracle.query_table_pair` call,
        which shares a single repair walk between the two instances (the
        detection state is forked at the target cell) and memoises the pair
        result under a fingerprint-pair key.  Requires ``incremental``; with
        either flag false the pair degrades to two independent
        :meth:`~BinaryRepairOracle.query_table` calls.  The oracle's own
        ``paired`` flag must also be set for the walk to actually be shared.
        Estimates are bit-identical across all flag combinations for a fixed
        seed.
    shared_stats:
        When ``True`` (default) and the oracle carries a
        :class:`~repro.engine.stats.SharedStatistics` engine (its own
        ``shared_stats`` flag), every sampled coalition view travels with
        that engine, so the repair algorithms lease one explainer-lifetime
        statistics instance — moved onto each instance by its sparse delta —
        instead of rebuilding counts per Monte-Carlo sample.  ``False``
        forces the per-instance statistics path.  Estimates are bit-identical
        either way.
    batched_pairs:
        When ``True`` (default) :meth:`estimate_cell` enqueues all of a
        cell's with/without pair requests and drains them through one
        :meth:`BinaryRepairOracle.query_pairs` scheduled pass (pair-memo
        dedup up front, coalition-prefix grouping, one primed walk per
        group).  Requires ``paired`` and ``incremental``; ``False`` submits
        one pair query per sample, exactly as before.  Estimates are
        bit-identical either way.
    n_jobs:
        ``None`` (default) keeps the sequential path: one RNG stream drives
        every cell's draws in submission order, exactly as in earlier
        releases.  An integer routes :meth:`estimate_cell`/:meth:`explain`
        through the sharded scheduler (:mod:`repro.parallel`): the job is
        partitioned into ``(cell, sample-chunk)`` shards with seeds spawned
        per shard from the job seed, executed on ``n_jobs`` worker processes
        (``1`` runs the same plan in-process), and merged.  Estimates are
        **bit-identical for every** ``n_jobs >= 1`` — the coalition draws of
        a shard depend only on the job seed and the shard's position, never
        on which worker ran it — but differ from the ``n_jobs=None`` stream,
        whose draws are serially entangled across cells.
    samples_per_shard:
        Samples per shard on the ``n_jobs`` path (default: the scheduler's,
        which matches :data:`BATCH_CHUNK_SIZE`).  Changing it changes the
        seed partition and therefore the draws; it must be held fixed when
        comparing runs.
    warm_pool:
        When ``True`` (default) the ``n_jobs`` path keeps one
        :class:`~repro.parallel.pool.WorkerPool` with resident worker oracle
        stacks alive for the explainer's lifetime — spawned on the first
        parallel call, reused across every :meth:`estimate_cell` /
        :meth:`explain` call and every adaptive round, shipping only new
        cache entries home.  ``False`` forces the cold path: a transient
        pool and a full worker-stack rebuild per round.  Estimates are
        bit-identical either way.  The explainer is a context manager;
        :meth:`close` shuts the pool down.
    worker_timeout:
        Seconds the warm pool waits for a worker's round report before
        declaring it hung and requeueing its shards onto a live worker
        (default: wait indefinitely; worker death is detected immediately
        either way).
    retry_policy:
        A :class:`~repro.parallel.pool.RetryPolicy` bounding the pool's
        restart machinery on the ``n_jobs`` path (backoff between worker
        restarts, per-slot restart cap, per-shard quarantine cap); ``None``
        uses the scheduler's default policy.
    deadline_seconds:
        Wall-clock budget per :meth:`explain` / :meth:`estimate_cell` call
        on the ``n_jobs`` path.  On expiry the merged partial estimates come
        back with ``ShapleyResult.completed=False`` instead of hanging; the
        sequential path ignores it.
    speculate:
        Let adaptive runs on the ``n_jobs`` path issue up to ``n_jobs``
        sample chunks ahead per unconverged cell each round, discarding any
        overshoot past the merged stopping point deterministically (see
        :class:`~repro.parallel.ShardedExplainScheduler`).  Estimates are
        bit-identical to the default ``False``; only throughput and the
        ``chunks_speculated`` / ``chunks_discarded`` counters change.
    """

    def __init__(
        self,
        oracle: BinaryRepairOracle,
        policy: ReplacementPolicy | str = ReplacementPolicy.SAMPLE,
        rng=None,
        incremental: bool = True,
        paired: bool = True,
        shared_stats: bool = True,
        batched_pairs: bool = True,
        n_jobs: int | None = None,
        samples_per_shard: int | None = None,
        warm_pool: bool = True,
        worker_timeout: float | None = None,
        retry_policy=None,
        deadline_seconds: float | None = None,
        speculate: bool = False,
    ):
        self.oracle = oracle
        self.policy = ReplacementPolicy.from_name(policy)
        self.incremental = bool(incremental)
        self.paired = bool(paired)
        self.shared_stats = bool(shared_stats) and self.incremental
        self.batched_pairs = bool(batched_pairs)
        if n_jobs is not None and int(n_jobs) < 1:
            raise ValueError(f"n_jobs must be a positive integer or None, got {n_jobs}")
        self.n_jobs = int(n_jobs) if n_jobs is not None else None
        self.samples_per_shard = samples_per_shard
        self.warm_pool = bool(warm_pool)
        self.worker_timeout = worker_timeout
        self.retry_policy = retry_policy
        self.deadline_seconds = deadline_seconds
        self.speculate = bool(speculate)
        #: schedulers by worker count, each owning one (lazily spawned) warm
        #: pool — cached so repeated estimates reuse resident worker state
        self._schedulers: dict[int, "object"] = {}
        #: the integer the sharded scheduler partitions into per-shard seeds;
        #: resolved immediately for int/None seeds, deferred for a live
        #: generator so purely sequential use never consumes an extra draw
        #: (see :meth:`job_seed`)
        self._job_seed: int | None = None
        if rng is None or isinstance(rng, (int, np.integer)):
            from repro.parallel.seeding import resolve_job_seed

            self._job_seed = resolve_job_seed(rng)
        self._rng = make_rng(rng)
        self.sampler = CellCoalitionSampler(
            oracle.dirty_table, policy=self.policy, rng=self._rng,
            materialize=not self.incremental,
            batched=self.paired and self.incremental,
            stats_engine=oracle.stats_engine if self.shared_stats else None,
        )

    # -- parallel plumbing ---------------------------------------------------------------

    def job_seed(self) -> int:
        """The seed the sharded scheduler partitions into per-shard streams.

        For integer (or default) seeds this is the seed itself; when the
        explainer was handed a live generator there is no integer to recover,
        so one is drawn from that generator — once, deterministically given
        the generator's state — and reused for every subsequent parallel run.
        The derivation rule itself lives in
        :func:`repro.parallel.seeding.resolve_job_seed`, shared with the
        permutation estimator.
        """
        if self._job_seed is None:
            from repro.parallel.seeding import resolve_job_seed

            self._job_seed = resolve_job_seed(self._rng)
        return self._job_seed

    def _scheduler(self, n_jobs: int):
        """The (cached) sharded scheduler for ``n_jobs`` workers.

        One scheduler — and therefore one warm pool with resident worker
        stacks — serves every parallel call of this explainer; the cold-pool
        mode caches the scheduler too (it keeps the in-process resident
        state that ``n_jobs=1`` always had).
        """
        scheduler = self._schedulers.get(n_jobs)
        if scheduler is None:
            from repro.parallel import ShardedExplainScheduler

            scheduler = ShardedExplainScheduler.from_explainer(
                self, n_jobs=n_jobs, samples_per_shard=self.samples_per_shard,
                warm_pool=self.warm_pool, worker_timeout=self.worker_timeout,
                retry_policy=self.retry_policy,
                deadline_seconds=self.deadline_seconds,
                speculate=self.speculate,
            )
            self._schedulers[n_jobs] = scheduler
        return scheduler

    def close(self) -> None:
        """Shut down any warm worker pools this explainer spawned.

        Safe to call repeatedly and never required for correctness — pool
        workers are daemonic and die with the parent — but long-lived
        processes explaining many tables should close explainers they are
        done with (or use them as context managers) to free the worker
        processes promptly.
        """
        for scheduler in self._schedulers.values():
            scheduler.close()
        self._schedulers.clear()

    def __enter__(self) -> "CellShapleyExplainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- single-cell estimate ------------------------------------------------------------

    def estimate_cell(self, cell: CellRef, n_samples: int = DEFAULT_CELL_SAMPLES) -> SampledShapleyEstimate:
        """Monte-Carlo Shapley estimate for one cell (Example 2.5's loop).

        On the batched path all of the cell's with/without pairs are enqueued
        and drained in one :meth:`BinaryRepairOracle.query_pairs` scheduled
        pass; on the paired path each sample's two instances go to the oracle
        as one pair query sharing a repair walk; otherwise they are two
        independent queries.  Either way the sample's contribution is the
        difference of the two binary answers, accumulated in sampling order.

        With ``n_jobs`` set the cell's samples are partitioned into seeded
        shards and estimated through the sharded scheduler instead (identical
        for every worker count, see the class docstring).
        """
        self.oracle.dirty_table.validate_cell(cell)
        if self.n_jobs is not None:
            outcome = self._scheduler(self.n_jobs).run(
                [cell], n_samples, absorb_into=self.oracle
            )
            return outcome.estimates[cell]
        tracker = RunningMean()
        self._accumulate_cell(cell, n_samples, tracker)
        return self._estimate_from(cell, tracker)

    def _accumulate_cell(self, cell: CellRef, n_samples: int, tracker: RunningMean) -> None:
        """Feed ``n_samples`` Monte-Carlo differences for ``cell`` into ``tracker``.

        The single evaluation core shared by the sequential path and the
        sharded scheduler's workers (which call it once per shard, after
        reseeding the sampler with the shard's stream).
        """
        use_pair = self.paired and self.incremental
        if use_pair and self.batched_pairs:
            remaining = n_samples
            while remaining > 0:
                chunk = min(remaining, BATCH_CHUNK_SIZE)
                remaining -= chunk
                pairs = [self.sampler.sample_pair(cell) for _ in range(chunk)]
                for value_with, value_without in self.oracle.query_pairs(pairs):
                    tracker.update(float(value_with - value_without))
        else:
            for _ in range(n_samples):
                with_cell, without_cell = self.sampler.sample_pair(cell)
                if use_pair:
                    value_with, value_without = self.oracle.query_table_pair(
                        with_cell, without_cell
                    )
                    difference = value_with - value_without
                else:
                    difference = self.oracle.query_table(with_cell) - self.oracle.query_table(without_cell)
                tracker.update(float(difference))

    @staticmethod
    def _estimate_from(cell: CellRef, tracker: RunningMean) -> SampledShapleyEstimate:
        # SampledShapleyEstimate normalises the degenerate n < 2 case itself
        return SampledShapleyEstimate(
            cell=cell,
            value=tracker.mean,
            standard_error=tracker.standard_error,
            n_samples=tracker.count,
        )

    def estimate_cell_converged(
        self,
        cell: CellRef,
        tolerance: float = 0.01,
        min_samples: int = 30,
        max_samples: int = DEFAULT_CELL_SAMPLES,
    ) -> SampledShapleyEstimate:
        """Adaptive estimate: sample in shard-sized rounds until converged.

        Runs the sharded scheduler (``n_jobs`` workers, or in-process when
        ``n_jobs`` is unset) in rounds of one seeded chunk per round and stops
        once the merged cross-shard accumulator satisfies the
        :class:`~repro.shapley.convergence.ConvergenceTracker` rule — the
        decision always consumes the merged sample count, never one worker's
        private count, so the stopping point (and the estimate) is identical
        for every worker count.
        """
        self.oracle.dirty_table.validate_cell(cell)
        outcome = self._scheduler(self.n_jobs or 1).run_adaptive(
            [cell], tolerance=tolerance, min_samples=min_samples,
            max_samples=max_samples, absorb_into=self.oracle,
        )
        return outcome.estimates[cell]

    # -- many cells ---------------------------------------------------------------------

    def explain(
        self,
        cells: Iterable[CellRef] | None = None,
        n_samples: int = DEFAULT_CELL_SAMPLES,
        exclude_cell_of_interest: bool = False,
    ) -> ShapleyResult:
        """Estimate Shapley values for ``cells`` (default: every cell of the table).

        Parameters
        ----------
        cells:
            The cells to explain; pass :func:`relevant_cells` output to save
            time on wide tables.
        n_samples:
            Permutation samples per cell (``m`` in the paper).
        exclude_cell_of_interest:
            Skip the cell being explained itself (its "contribution to its own
            repair" is usually not what a user wants ranked).
        """
        if cells is None:
            cells = list(self.oracle.dirty_table.cells())
        else:
            cells = list(cells)
        if exclude_cell_of_interest:
            cells = [cell for cell in cells if cell != self.oracle.cell]

        values: dict[CellRef, float] = {}
        errors: dict[CellRef, float] = {}
        total_samples = 0
        completed = True
        if self.n_jobs is not None and cells:
            # one sharded plan over the whole job: all (cell, chunk) shards
            # are scheduled together so the workers stay busy across cells
            outcome = self._scheduler(self.n_jobs).run(
                cells, n_samples, absorb_into=self.oracle
            )
            completed = outcome.completed
            for cell in cells:
                estimate = outcome.estimates[cell]
                values[cell] = estimate.value
                errors[cell] = estimate.standard_error
                total_samples += estimate.n_samples
        else:
            # the sequential path records the same explain_job → cell span
            # shape as the scheduler, with ids from the same coordinates
            tracer = otrace.current()
            seed = self.job_seed() if tracer is not None else 0
            job_span = None
            if tracer is not None:
                job_span = tracer.start(
                    "explain_job",
                    span_id=coordinate_span_id(seed, "job", "sequential"),
                    kind="sequential", cells=len(cells),
                )
            try:
                for position, cell in enumerate(cells):
                    if tracer is None:
                        estimate = self.estimate_cell(cell, n_samples=n_samples)
                    else:
                        with tracer.span(
                            "cell",
                            span_id=coordinate_span_id(seed, "cell", position),
                            cell=str(cell),
                        ):
                            estimate = self.estimate_cell(cell, n_samples=n_samples)
                    values[cell] = estimate.value
                    errors[cell] = estimate.standard_error
                    total_samples += estimate.n_samples
            finally:
                if job_span is not None:
                    tracer.finish(job_span)
        return ShapleyResult(
            values=values,
            standard_errors=errors,
            n_samples=total_samples,
            n_evaluations=self.oracle.calls,
            method=f"cell-sampling-{self.policy.value}",
            completed=completed,
        )

    # -- exact (tiny tables) ----------------------------------------------------------------

    def exact_cell_value(self, cell: CellRef) -> float:
        """Exact Shapley value of a cell under the NULL-coalition definition.

        Enumerates every coalition of the *other* cells (all non-coalition
        cells nulled out), so it is only usable on tiny tables; the test-suite
        uses it to validate the sampling estimator.
        """
        table = self.oracle.dirty_table
        all_cells = list(table.cells())
        others = [c for c in all_cells if c != cell]
        n = len(all_cells)
        sampler = CellCoalitionSampler(table, policy=ReplacementPolicy.NULL, rng=self._rng)
        coalitions = sampler.enumerate_coalitions(cell)
        total = 0.0
        for coalition in coalitions:
            weight = shapley_weight(len(coalition), n)
            with_cell = self.oracle.query_cell_coalition(set(coalition) | {cell})
            without_cell = self.oracle.query_cell_coalition(coalition)
            total += weight * (with_cell - without_cell)
        # `others` retained for clarity: the enumeration is over subsets of it.
        assert len(others) == n - 1
        return total
