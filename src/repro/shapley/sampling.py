"""Cell-coalition sampling (Example 2.5 of the paper).

To estimate the Shapley value of a cell ``t_i[B]`` for the repair of the cell
of interest ``t_d[A]``, the paper adapts the Strumbelj–Kononenko sampling
scheme:

1. vectorise the table into the cell vector
   ``x_T = (t1[A_1], ..., t1[A_m], t2[A_1], ..., t_n[A_m])``;
2. draw a random permutation of the cells; the coalition is the set of cells
   preceding ``t_i[B]`` in that permutation;
3. cells outside the coalition are replaced with a value drawn from their
   column distribution (or nulled / set to the modal value, depending on the
   replacement policy);
4. build two table instances — one keeping the original value of ``t_i[B]``
   and one where that value too is replaced — and add the difference of the
   binary oracle on the two instances to the running estimate;
5. repeat ``m`` times and report the average.

This module owns steps 1–4; :class:`repro.shapley.cells.CellShapleyExplainer`
drives the loop and aggregates estimates for many cells.  On the incremental
path the pair of step 4 is one coalition view plus a one-cell sub-delta, which
is exactly the shape :meth:`repro.repair.base.BinaryRepairOracle.query_pair`
exploits to evaluate both instances in a single shared repair walk.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.config import make_rng
from repro.dataset.table import CellRef, PerturbationView, Table
from repro.engine.storage import NULL, values_differ
from repro.errors import TRexError


class ReplacementPolicy(enum.Enum):
    """How out-of-coalition cells are filled before querying the black box.

    ``SAMPLE``
        Draw a replacement from the cell's column distribution — the paper's
        algorithm (Example 2.5).
    ``NULL``
        Null the cell out — the paper's formal definition of the cell
        characteristic function (Section 2.2, ``S ⊆ T^d``).
    ``MODE``
        Use the column's most frequent value — a deterministic baseline used
        by the replacement-policy ablation (E10).
    """

    SAMPLE = "sample"
    NULL = "null"
    MODE = "mode"

    @classmethod
    def from_name(cls, name: "str | ReplacementPolicy") -> "ReplacementPolicy":
        if isinstance(name, ReplacementPolicy):
            return name
        try:
            return cls(name.lower())
        except ValueError as exc:
            valid = ", ".join(policy.value for policy in cls)
            raise TRexError(f"unknown replacement policy {name!r}; expected one of {valid}") from exc


@dataclass
class SampledShapleyEstimate:
    """The Monte-Carlo estimate for one cell.

    With fewer than two samples no spread can be estimated:
    ``standard_error`` is reported as ``0.0`` (never a division-by-near-zero
    ``nan``/``inf`` artifact) and :meth:`confidence_interval` degenerates to
    the point estimate itself.
    """

    cell: CellRef
    value: float
    standard_error: float
    n_samples: int

    def __post_init__(self):
        if self.n_samples < 2 or self.standard_error != self.standard_error:
            self.standard_error = 0.0

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation interval; degenerate with < 2 samples."""
        if self.n_samples < 2 or not math.isfinite(self.standard_error):
            return (self.value, self.value)
        half_width = z * self.standard_error
        return (self.value - half_width, self.value + half_width)


class CellCoalitionSampler:
    """Builds the perturbed table instances of the sampling algorithm.

    Parameters
    ----------
    table:
        The dirty table ``T^d``.
    policy:
        Replacement policy for out-of-coalition cells.
    rng:
        Seed or generator for reproducible sampling.
    materialize:
        When ``False`` (the default, the incremental path) each instance is a
        :class:`~repro.dataset.table.PerturbationView` — a sparse copy-on-write
        delta on the dirty table, with the second instance of each pair built
        as a one-cell sub-delta of the first.  When ``True`` instances are
        full materialised :class:`Table` copies (the full-rescan reference
        path).  Both paths consume the RNG identically and produce identical
        cell contents, so estimates agree bit-for-bit for a fixed seed.
    batched:
        Build coalition views from a precomputed everything-replaced overlay
        (one dict copy minus the coalition per sample) instead of re-deriving
        every cell's replacement per sample.  Only applies to the
        deterministic ``NULL``/``MODE`` policies on the view path, where it
        changes nothing but construction cost; the paired sampling loop
        (:class:`~repro.shapley.cells.CellShapleyExplainer` with
        ``paired=True``) enables it.
    stats_engine:
        Optional :class:`~repro.engine.stats.SharedStatistics` engine to
        install on every built coalition view (and, by inheritance, on the
        working snapshots the repair algorithms fork off them): repairs then
        lease the engine's one revertible statistics instance instead of
        rebuilding counts per instance.  Replacement values are always drawn
        from the dirty table's own statistics, so estimates are unaffected.
    """

    def __init__(self, table: Table, policy: ReplacementPolicy | str = ReplacementPolicy.SAMPLE,
                 rng=None, materialize: bool = False, batched: bool = False,
                 stats_engine=None):
        self.table = table
        self.policy = ReplacementPolicy.from_name(policy)
        self.materialize = bool(materialize)
        self.batched = bool(batched)
        self.stats_engine = stats_engine
        self._rng = make_rng(rng)
        #: the vectorised cell order of Example 2.5 (row-major)
        self.cells: tuple[CellRef, ...] = tuple(table.cells())
        self._cell_index = {cell: i for i, cell in enumerate(self.cells)}
        #: precomputed normalised everything-replaced overlay for the
        #: deterministic policies (see :meth:`_replacement_overlay`)
        self._overlay: dict[CellRef, object] | None = None
        #: the overlay's per-column encoded arrays ``{attr: (rows, codes)}``
        #: and each overlay cell's position within its column's arrays —
        #: coalition deltas are born in code space as one masked slice per
        #: column (see :meth:`_overlay_encoding`)
        self._overlay_arrays: "dict[str, tuple[np.ndarray, np.ndarray]] | None" = None
        self._overlay_pos: dict[CellRef, int] = {}
        #: optional provenance sink: while set, every drawn sample records
        #: the base cells whose *original* values the built instances expose
        #: (the coalition plus the kept target) into this set — the
        #: touched-cell fingerprint the live session's selective invalidation
        #: intersects with base updates.  Recording never consumes the RNG.
        self.touched_sink: "set[CellRef] | None" = None

    # -- seeding -------------------------------------------------------------------

    def reseed(self, rng) -> None:
        """Swap the sampler's RNG stream (seed, generator, or ``None``).

        The sharded scheduler (:mod:`repro.parallel`) partitions a job seed
        into one independent stream per ``(cell, sample-chunk)`` shard and
        installs each stream here before drawing the shard's permutations, so
        the draws for a given shard are identical no matter which worker —
        or how many workers — execute the plan.  Policy-precomputed state
        (the deterministic replacement overlay) is RNG-free and survives the
        swap.
        """
        self._rng = make_rng(rng)

    # -- replacement values --------------------------------------------------------

    def replacement_value(self, cell: CellRef):
        """A replacement value for ``cell`` according to the policy."""
        if self.policy is ReplacementPolicy.NULL:
            return NULL
        marginal = self.table.stats.marginal(cell.attribute)
        if self.policy is ReplacementPolicy.MODE:
            return marginal.most_common()
        return marginal.sample(rng=self._rng)

    def _replacement_overlay(self) -> dict[CellRef, object] | None:
        """Normalised delta replacing *every* cell, for deterministic policies.

        The ``NULL`` and ``MODE`` policies assign each cell the same
        replacement on every sample and never consume the RNG, so the
        "replace everything" overlay can be computed once; per sample the
        coalition's cells are simply dropped from a copy.  ``SAMPLE`` draws
        fresh values per sample and returns ``None`` (per-cell path).
        """
        if self.policy is ReplacementPolicy.SAMPLE:
            return None
        if self._overlay is None:
            overlay: dict[CellRef, object] = {}
            for cell in self.cells:
                replacement = self.replacement_value(cell)
                if values_differ(self.table[cell], replacement):
                    overlay[cell] = replacement
            self._overlay = overlay
        return self._overlay

    def _overlay_encoding(self) -> "dict[str, tuple[np.ndarray, np.ndarray]]":
        """The deterministic overlay encoded column-wise, computed once.

        For each column the full overlay's override set is bulk-encoded into
        ``(rows, codes)`` arrays
        (:meth:`~repro.engine.encoding.TableEncoding.encode_delta`) and every
        overlay cell's position within its column's arrays is recorded.  Per
        sample a coalition delta's encoded form is then one boolean mask per
        column over these arrays — the delta is born in code space and the
        built view never re-encodes it.  Unencodable columns are simply
        absent (their views fall back to the lazy per-view path).  The
        encoding is RNG-free and codes stay valid for the sampler's lifetime
        (dictionaries are append-only).
        """
        if self._overlay_arrays is None:
            by_column: dict[str, dict[int, object]] = {}
            for cell, value in self._replacement_overlay().items():
                by_column.setdefault(cell.attribute, {})[cell.row] = value
            encoding = self.table.store.encoding()
            arrays: dict[str, tuple[np.ndarray, np.ndarray]] = {}
            positions: dict[CellRef, int] = {}
            for name, overrides in by_column.items():
                encoded = encoding.encode_delta(name, overrides)
                if encoded is None:
                    continue
                arrays[name] = encoded
                for position, row in enumerate(encoded[0].tolist()):
                    positions[CellRef(row, name)] = position
            self._overlay_arrays = arrays
            self._overlay_pos = positions
        return self._overlay_arrays

    # -- permutation / coalition sampling -----------------------------------------------

    def sample_permutation(self) -> np.ndarray:
        """A uniformly random permutation of the cell indexes."""
        return self._rng.permutation(len(self.cells))

    def coalition_before(self, target_cell: CellRef, permutation: np.ndarray) -> set[CellRef]:
        """The coalition: every cell preceding ``target_cell`` in the permutation."""
        if target_cell not in self._cell_index:
            raise TRexError(f"cell {target_cell} is not part of the table")
        target_index = self._cell_index[target_cell]
        coalition: set[CellRef] = set()
        for index in permutation:
            if int(index) == target_index:
                break
            coalition.add(self.cells[int(index)])
        return coalition

    # -- instance construction ---------------------------------------------------------------

    def build_instances(self, target_cell: CellRef, coalition: Iterable[CellRef]) -> tuple[Table, Table]:
        """The two table instances whose oracle difference is one sample.

        Both instances replace every cell outside ``coalition ∪ {target}``
        with a policy-generated value; the first keeps the original value of
        ``target_cell``, the second replaces it too.  The same replacement
        values are used in both instances so the only difference between them
        is the target cell (paired sampling, which reduces variance).

        On the incremental path the first instance is a copy-on-write view of
        the dirty table and the second is the same view plus a one-cell
        sub-delta — no columns are ever copied.
        """
        coalition = set(coalition)
        if self.batched and not self.materialize and not isinstance(self.table, PerturbationView):
            overlay = self._replacement_overlay()
            if overlay is not None:
                # deterministic policies: copy the precomputed normalised
                # overlay and drop the coalition instead of re-deriving every
                # replacement per sample
                delta = dict(overlay)
                arrays = self._overlay_encoding()
                positions = self._overlay_pos
                drops: dict[str, list[int]] = {}
                delta.pop(target_cell, None)
                position = positions.get(target_cell)
                if position is not None:
                    drops.setdefault(target_cell.attribute, []).append(position)
                for cell in coalition:
                    delta.pop(cell, None)
                    position = positions.get(cell)
                    if position is not None:
                        drops.setdefault(cell.attribute, []).append(position)
                with_original = self.table.perturbed(delta, trusted=True,
                                                     prenormalized=True)
                if self.stats_engine is not None:
                    with_original._stats_engine = self.stats_engine
                # the delta is born in code space: one masked slice of the
                # precomputed per-column arrays per overridden column — the
                # view (and, via cache inheritance, its sub-delta sibling and
                # the repairers' working snapshots) never re-encodes it
                store = with_original._store
                for name, (rows, codes) in arrays.items():
                    dropped = drops.get(name)
                    if not dropped:
                        store.adopt_encoded_delta(name, rows, codes)
                    else:
                        keep = np.ones(len(rows), dtype=bool)
                        keep[dropped] = False
                        store.adopt_encoded_delta(name, rows[keep], codes[keep])
                without_original = with_original.perturbed(
                    {target_cell: self.replacement_value(target_cell)}, trusted=True
                )
                return with_original, without_original

        replacements: dict[CellRef, object] = {}
        for cell in self.cells:
            if cell == target_cell or cell in coalition:
                continue
            replacements[cell] = self.replacement_value(cell)

        if self.materialize:
            with_original = self.table.with_values(replacements)
            replacements_without = dict(replacements)
            replacements_without[target_cell] = self.replacement_value(target_cell)
            without_original = self.table.with_values(replacements_without)
            return with_original, without_original

        with_original = self.table.perturbed(replacements, trusted=True)
        if self.stats_engine is not None:
            with_original._stats_engine = self.stats_engine
        without_original = with_original.perturbed(
            {target_cell: self.replacement_value(target_cell)}, trusted=True
        )
        return with_original, without_original

    def sample_pair(self, target_cell: CellRef) -> tuple[Table, Table]:
        """Draw one permutation and return the corresponding instance pair."""
        permutation = self.sample_permutation()
        coalition = self.coalition_before(target_cell, permutation)
        if self.touched_sink is not None:
            # the with-instance shows the base's own value at every coalition
            # cell and at the kept target — exactly the cells whose base
            # content this sample's answer depends on
            self.touched_sink.update(coalition)
            self.touched_sink.add(target_cell)
        return self.build_instances(target_cell, coalition)

    # -- base-update maintenance ---------------------------------------------------

    def invalidate_overlay(self) -> None:
        """Drop policy-precomputed state after a base-table update.

        The deterministic replacement overlay is normalised against base
        values (``MODE`` additionally reads column modes), so a base write
        can both stale its entries and change which cells it covers; the
        encoded arrays and positions are derived from it.  All three are
        rebuilt lazily on the next sample.  Dictionary codes themselves are
        append-only and stay valid.
        """
        self._overlay = None
        self._overlay_arrays = None
        self._overlay_pos = {}

    # -- exhaustive enumeration (tiny tables only) ------------------------------------------------

    def enumerate_coalitions(self, target_cell: CellRef) -> Sequence[frozenset]:
        """All coalitions of the other cells — only sensible for tiny tables.

        Used by the test-suite to cross-check the sampled estimator against
        exact enumeration under the ``NULL`` policy.
        """
        others = [cell for cell in self.cells if cell != target_cell]
        if len(others) > 20:
            raise TRexError(
                f"refusing to enumerate 2^{len(others)} coalitions; "
                "exact cell Shapley is only supported for tiny tables"
            )
        from itertools import combinations

        coalitions: list[frozenset] = []
        for size in range(len(others) + 1):
            coalitions.extend(frozenset(c) for c in combinations(others, size))
        return coalitions
