"""Shapley-value computation — the paper's core machinery.

T-REx quantifies the contribution of each denial constraint and of each table
cell to the repair of a cell of interest using Shapley values (Section 2.2):

* for **constraints** the player set is the (small) set of DCs and the exact
  subset-enumeration formula is used (:mod:`repro.shapley.constraints`,
  backed by the generic engines in :mod:`repro.shapley.exact` and
  :mod:`repro.shapley.permutation`);
* for **cells** the player set is every cell of the dirty table, so the value
  is approximated with the permutation-sampling estimator of Strumbelj &
  Kononenko (Example 2.5 of the paper; :mod:`repro.shapley.cells` and
  :mod:`repro.shapley.sampling`).

All engines operate on the abstract :class:`~repro.shapley.game.CooperativeGame`
interface, so they are reusable beyond the repair-explanation setting and
are cross-checked against each other in the test-suite.

**The incremental hot path.**  Each sampled coalition differs from the dirty
table in a sparse set of cells, so by default the sampling loop never builds
a second full table: coalitions are
:class:`~repro.dataset.table.PerturbationView` copy-on-write deltas on the
dirty table, the with/without pair of Example 2.5 is a one-cell sub-delta,
and the repair algorithms evaluate them through the incremental violation
detector (:mod:`repro.constraints.incremental`), which retracts and re-checks
only the touched rows against delta-maintained indexes.  Pass
``incremental=False`` to :class:`CellShapleyExplainer` /
:class:`~repro.repair.base.BinaryRepairOracle` to force the materialise-and-
rescan reference path; estimates are identical for a fixed seed (the
``bench_incremental_vs_full`` benchmark asserts this).
"""

from repro.shapley.game import CooperativeGame, CallableGame, ShapleyResult
from repro.shapley.exact import exact_shapley, exact_shapley_single
from repro.shapley.permutation import permutation_shapley
from repro.shapley.sampling import (
    CellCoalitionSampler,
    ReplacementPolicy,
    SampledShapleyEstimate,
)
from repro.shapley.constraints import ConstraintShapleyExplainer
from repro.shapley.cells import CellShapleyExplainer
from repro.shapley.convergence import RunningMean, ConvergenceTracker
from repro.shapley.interaction import (
    shapley_interaction_index,
    all_pairwise_interactions,
    banzhaf_values,
)

__all__ = [
    "CooperativeGame",
    "CallableGame",
    "ShapleyResult",
    "exact_shapley",
    "exact_shapley_single",
    "permutation_shapley",
    "CellCoalitionSampler",
    "ReplacementPolicy",
    "SampledShapleyEstimate",
    "ConstraintShapleyExplainer",
    "CellShapleyExplainer",
    "RunningMean",
    "ConvergenceTracker",
    "shapley_interaction_index",
    "all_pairwise_interactions",
    "banzhaf_values",
]
