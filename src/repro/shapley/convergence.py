"""Monte-Carlo bookkeeping: running means, variances and stopping rules.

The sampling-based Shapley estimators accumulate marginal-contribution
samples one at a time; :class:`RunningMean` keeps numerically stable (Welford)
estimates of their mean and variance, and :class:`ConvergenceTracker` turns
those into confidence intervals and an optional early-stopping rule, which
the convergence benchmark (E5) and the interactive session use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class RunningMean:
    """Welford online mean/variance accumulator."""

    __slots__ = ("count", "mean", "_m2")

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def update(self, sample: float) -> None:
        self.count += 1
        delta = sample - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (sample - self.mean)

    def merge(self, other: "RunningMean") -> None:
        """Merge another accumulator into this one (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count, self.mean, self._m2 = other.count, other.mean, other._m2
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def standard_error(self) -> float:
        if self.count == 0:
            return float("inf")
        return math.sqrt(self.variance / self.count) if self.count > 1 else float("inf")

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval around the mean."""
        if self.count < 2:
            return (float("-inf"), float("inf"))
        half_width = z * self.standard_error
        return (self.mean - half_width, self.mean + half_width)


@dataclass
class ConvergenceTracker:
    """Track an estimate over time and decide when it has converged.

    Parameters
    ----------
    tolerance:
        Target half-width of the confidence interval (absolute).
    z:
        Normal quantile for the confidence level (1.96 ≈ 95%).
    min_samples:
        Never report convergence before this many samples.
    """

    tolerance: float = 0.01
    z: float = 1.96
    min_samples: int = 30
    accumulator: RunningMean = field(default_factory=RunningMean)
    history: list[float] = field(default_factory=list)

    def update(self, sample: float, record_history: bool = False) -> None:
        self.accumulator.update(sample)
        if record_history:
            self.history.append(self.accumulator.mean)

    def merge(self, block: RunningMean) -> None:
        """Fold a block of samples (e.g. one shard's accumulator) into the tracker.

        Parallel estimation must decide convergence on the *merged*
        cross-shard sample count and variance — a per-worker accumulator sees
        only its own slice of the samples, so checking ``converged()`` against
        it would stop far too late (its count never reaches ``min_samples``)
        or report intervals computed from a fraction of the evidence.  The
        sharded scheduler therefore merges every worker's block here first and
        only then consults :meth:`converged`.
        """
        self.accumulator.merge(block)

    @property
    def estimate(self) -> float:
        return self.accumulator.mean

    @property
    def half_width(self) -> float:
        if self.accumulator.count < 2:
            return float("inf")
        return self.z * self.accumulator.standard_error

    def converged(self) -> bool:
        return self.accumulator.count >= self.min_samples and self.half_width <= self.tolerance

    def required_samples(self) -> int | None:
        """Rough projection of the total samples needed to reach the tolerance."""
        if self.accumulator.count < 2:
            return None
        variance = self.accumulator.variance
        if variance == 0:
            return self.accumulator.count
        return max(self.min_samples, math.ceil((self.z ** 2) * variance / (self.tolerance ** 2)))


def absolute_errors(estimates: dict, reference: dict) -> dict:
    """Per-key absolute error between an estimate mapping and a reference mapping."""
    return {key: abs(estimates[key] - reference[key]) for key in reference if key in estimates}


def mean_absolute_error(estimates: dict, reference: dict) -> float:
    """Mean absolute error over the keys present in both mappings."""
    errors = absolute_errors(estimates, reference)
    if not errors:
        return float("nan")
    return sum(errors.values()) / len(errors)
