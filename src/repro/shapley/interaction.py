"""Shapley interaction indices and Banzhaf values.

The paper's Example 2.3 observes that C1 and C2 only matter *as a pair*: each
alone cannot repair the cell, together they can.  Plain Shapley values split
that joint credit (1/6 each) but cannot express the synergy itself.  Two
standard refinements from cooperative game theory make it explicit:

* the **Shapley interaction index** of a pair {a, b}

      I(a, b) = Σ_{S ⊆ N \\ {a,b}}  |S|! (n − |S| − 2)! / (n − 1)!
                · ( v(S ∪ {a,b}) − v(S ∪ {a}) − v(S ∪ {b}) + v(S) )

  which is positive when the two players are complements (such as C1 and C2),
  negative when they are substitutes (such as C3 and the pair), and zero when
  they do not interact;

* the **Banzhaf value**, an alternative attribution index that weights every
  coalition equally instead of by size — a useful robustness check for the
  constraint rankings.

Both are exponential-time like the exact Shapley value and therefore only
intended for the (small) constraint games.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Iterable

from repro.errors import TRexError
from repro.shapley.game import CooperativeGame, MemoisedGame, Player, ShapleyResult


def _interaction_weight(coalition_size: int, n_players: int) -> float:
    return (
        math.factorial(coalition_size)
        * math.factorial(n_players - coalition_size - 2)
        / math.factorial(n_players - 1)
    )


def shapley_interaction_index(game: CooperativeGame, player_a: Player, player_b: Player) -> float:
    """Exact Shapley interaction index of the pair ``{player_a, player_b}``."""
    if player_a == player_b:
        raise TRexError("the interaction index is defined for two distinct players")
    players = game.players
    for player in (player_a, player_b):
        if player not in players:
            raise TRexError(f"unknown player {player!r}")
    n_players = len(players)
    if n_players < 2:
        raise TRexError("interaction indices need at least two players")
    others = [p for p in players if p not in (player_a, player_b)]
    memoised = game if isinstance(game, MemoisedGame) else MemoisedGame(game)

    total = 0.0
    for size in range(len(others) + 1):
        weight = _interaction_weight(size, n_players)
        for subset in combinations(others, size):
            coalition = frozenset(subset)
            total += weight * (
                memoised.value(coalition | {player_a, player_b})
                - memoised.value(coalition | {player_a})
                - memoised.value(coalition | {player_b})
                + memoised.value(coalition)
            )
    return total


def all_pairwise_interactions(
    game: CooperativeGame, players: Iterable[Player] | None = None
) -> dict[frozenset, float]:
    """Interaction index for every unordered pair of (the given) players."""
    memoised = MemoisedGame(game)
    chosen = tuple(players) if players is not None else game.players
    return {
        frozenset({a, b}): shapley_interaction_index(memoised, a, b)
        for a, b in combinations(chosen, 2)
    }


def banzhaf_values(game: CooperativeGame) -> ShapleyResult:
    """Exact Banzhaf values of every player.

    The Banzhaf value of ``a`` is the average marginal contribution of ``a``
    over all ``2^(n-1)`` coalitions of the other players (uniform weighting).
    Unlike the Shapley value it is generally *not* efficient (the values need
    not sum to ``v(N)``), so it is reported as a separate
    :class:`~repro.shapley.game.ShapleyResult` with its own method tag.
    """
    memoised = MemoisedGame(game)
    players = game.players
    values: dict[Player, float] = {}
    for player in players:
        others = [p for p in players if p != player]
        total = 0.0
        count = 0
        for size in range(len(others) + 1):
            for subset in combinations(others, size):
                coalition = frozenset(subset)
                total += memoised.value(coalition | {player}) - memoised.value(coalition)
                count += 1
        values[player] = total / count if count else 0.0
    return ShapleyResult(
        values=values,
        n_samples=0,
        n_evaluations=memoised.evaluations,
        method="banzhaf-exact",
    )
