"""Permutation-sampling Shapley estimation for generic games.

The Shapley value equals the expected marginal contribution of a player over
a uniformly random permutation of the player set:

    Shap(a) = E_π [ v(pre_π(a) ∪ {a}) − v(pre_π(a)) ]

where ``pre_π(a)`` is the set of players preceding ``a`` in permutation π.
Sampling permutations therefore gives an unbiased estimator whose error
shrinks as ``1/√m``.  Two variance-reduction options are provided:

* **antithetic sampling** — each drawn permutation is also used reversed,
  which cancels part of the positional noise;
* **one-permutation-all-players** updates — a single permutation yields a
  marginal contribution for *every* player (the standard Castro et al.
  estimator), so the per-sample cost is ``n + 1`` evaluations amortised over
  ``n`` players.

This generic engine is used by the scaling/ablation benches and as an
alternative to exact enumeration for large DC sets; the *cell* estimator of
Example 2.5 (which also perturbs out-of-coalition values) lives in
:mod:`repro.shapley.sampling`.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.config import make_rng
from repro.shapley.convergence import RunningMean
from repro.shapley.game import CooperativeGame, Player, ShapleyResult, validate_players


def permutation_shapley(
    game: CooperativeGame,
    n_permutations: int = 200,
    players: Iterable[Player] | None = None,
    rng=None,
    antithetic: bool = False,
) -> ShapleyResult:
    """Estimate Shapley values from ``n_permutations`` random permutations.

    Parameters
    ----------
    game:
        The cooperative game to evaluate.
    n_permutations:
        Number of sampled permutations (each permutation contributes one
        marginal-contribution sample per player).
    players:
        Optional subset of players to estimate (all players are walked either
        way, since the permutation visit order determines every coalition).
    rng:
        Seed or :class:`numpy.random.Generator`.
    antithetic:
        Also evaluate each permutation reversed (doubling the per-permutation
        cost but reducing variance for monotone games).
    """
    rng = make_rng(rng)
    requested = set(validate_players(game, players))
    all_players = game.players
    n = len(all_players)
    trackers: dict[Player, RunningMean] = {player: RunningMean() for player in all_players}
    evaluations = 0

    def walk(order: np.ndarray) -> None:
        nonlocal evaluations
        coalition: set[Player] = set()
        previous_value = game.value(frozenset())
        evaluations += 1
        for index in order:
            player = all_players[int(index)]
            coalition.add(player)
            current_value = game.value(frozenset(coalition))
            evaluations += 1
            trackers[player].update(current_value - previous_value)
            previous_value = current_value

    n_walks = 0
    for _ in range(n_permutations):
        order = rng.permutation(n)
        walk(order)
        n_walks += 1
        if antithetic:
            walk(order[::-1])
            n_walks += 1

    values = {p: trackers[p].mean for p in all_players if p in requested}
    errors = {p: trackers[p].standard_error for p in all_players if p in requested}
    return ShapleyResult(
        values=values,
        standard_errors=errors,
        n_samples=n_walks,
        n_evaluations=evaluations,
        method="permutation-sampling" + ("-antithetic" if antithetic else ""),
    )


def stratified_permutation_shapley(
    game: CooperativeGame,
    n_permutations_per_position: int = 20,
    player: Player | None = None,
    rng=None,
) -> ShapleyResult:
    """Stratified estimator: sample coalitions separately for each coalition size.

    The Shapley value is the average over coalition sizes of the expected
    marginal contribution at that size; sampling each size ("stratum")
    separately guarantees every size is represented, which plain permutation
    sampling only achieves in expectation.  Used by the sampling-strategy
    ablation (E10).
    """
    rng = make_rng(rng)
    all_players = game.players
    n = len(all_players)
    targets = [player] if player is not None else list(all_players)
    values: dict[Player, float] = {}
    errors: dict[Player, float] = {}
    evaluations = 0

    for target in targets:
        others = [p for p in all_players if p != target]
        stratum_means: list[float] = []
        stratum_vars: list[float] = []
        for size in range(n):
            tracker = RunningMean()
            for _ in range(n_permutations_per_position):
                if size and others:
                    chosen = rng.choice(len(others), size=min(size, len(others)), replace=False)
                    coalition = frozenset(others[int(i)] for i in chosen)
                else:
                    coalition = frozenset()
                marginal = game.value(coalition | {target}) - game.value(coalition)
                evaluations += 2
                tracker.update(marginal)
            stratum_means.append(tracker.mean)
            stratum_vars.append(tracker.variance / max(1, tracker.count))
        values[target] = float(np.mean(stratum_means))
        errors[target] = float(np.sqrt(np.sum(stratum_vars)) / n)

    return ShapleyResult(
        values=values,
        standard_errors=errors,
        n_samples=n_permutations_per_position * n,
        n_evaluations=evaluations,
        method="stratified-sampling",
    )
