"""Permutation-sampling Shapley estimation for generic games.

The Shapley value equals the expected marginal contribution of a player over
a uniformly random permutation of the player set:

    Shap(a) = E_π [ v(pre_π(a) ∪ {a}) − v(pre_π(a)) ]

where ``pre_π(a)`` is the set of players preceding ``a`` in permutation π.
Sampling permutations therefore gives an unbiased estimator whose error
shrinks as ``1/√m``.  Two variance-reduction options are provided:

* **antithetic sampling** — each drawn permutation is also used reversed,
  which cancels part of the positional noise;
* **one-permutation-all-players** updates — a single permutation yields a
  marginal contribution for *every* player (the standard Castro et al.
  estimator), so the per-sample cost is ``n + 1`` evaluations amortised over
  ``n`` players.

This generic engine is used by the scaling/ablation benches and as an
alternative to exact enumeration for large DC sets; the *cell* estimator of
Example 2.5 (which also perturbs out-of-coalition values) lives in
:mod:`repro.shapley.sampling`.
"""

from __future__ import annotations

import pickle
import warnings
from typing import Iterable, Sequence

import numpy as np

from repro.config import make_rng
from repro.shapley.convergence import RunningMean
from repro.shapley.game import CooperativeGame, Player, ShapleyResult, validate_players


def _walk_permutations(
    game: CooperativeGame,
    all_players: Sequence[Player],
    n_permutations: int,
    rng: np.random.Generator,
    antithetic: bool,
) -> tuple[dict[Player, RunningMean], int, int]:
    """Walk ``n_permutations`` permutations drawn from ``rng``.

    The single evaluation core shared by the sequential estimator (one call,
    one stream) and the sharded one (one call per seeded chunk); returns the
    per-player accumulators plus the walk/evaluation counts.
    """
    n = len(all_players)
    trackers: dict[Player, RunningMean] = {player: RunningMean() for player in all_players}
    evaluations = 0
    n_walks = 0

    def walk(order: np.ndarray) -> None:
        nonlocal evaluations
        coalition: set[Player] = set()
        previous_value = game.value(frozenset())
        evaluations += 1
        for index in order:
            player = all_players[int(index)]
            coalition.add(player)
            current_value = game.value(frozenset(coalition))
            evaluations += 1
            trackers[player].update(current_value - previous_value)
            previous_value = current_value

    for _ in range(n_permutations):
        order = rng.permutation(n)
        walk(order)
        n_walks += 1
        if antithetic:
            walk(order[::-1])
            n_walks += 1
    return trackers, n_walks, evaluations


def _permutation_worker(game, chunks: Sequence[tuple[int, int]], job_seed: int,
                        antithetic: bool):
    """One worker task: walk the given ``(chunk_index, size)`` chunks.

    ``game`` arrives as pickled bytes on the multi-process path and as the
    live object in-process; each chunk draws from its own stream keyed by
    ``(job_seed, chunk_index)``, so results are assignment-invariant.
    """
    from repro.parallel.seeding import shard_rng

    if isinstance(game, (bytes, bytearray)):
        game = pickle.loads(bytes(game))
    all_players = game.players
    return [
        (chunk_index,
         _walk_permutations(game, all_players, size,
                            shard_rng(job_seed, chunk_index), antithetic))
        for chunk_index, size in chunks
    ]


def _sharded_permutation_shapley(
    game: CooperativeGame,
    n_permutations: int,
    requested: set[Player],
    rng,
    antithetic: bool,
    n_jobs: int,
    permutations_per_shard: int,
) -> ShapleyResult:
    """The ``n_jobs`` estimator: seeded permutation chunks, merged trackers.

    Bit-identical for every ``n_jobs >= 1``: chunk draws depend only on the
    job seed and the chunk index, and the per-player accumulators are merged
    in chunk order.  Games that cannot be pickled (closures, bound lambdas)
    degrade to in-process execution with a warning — same plan, same bits.
    Worker health is the pool's (:mod:`repro.parallel.pool`): a worker that
    dies mid-round has only *its* chunks requeued onto a live worker or
    re-run in-process — the seeded chunk streams make the re-execution
    bit-identical wherever it lands.
    """
    from repro.parallel.pool import run_worker_tasks
    from repro.parallel.seeding import partition_samples, resolve_job_seed

    if n_jobs < 1:
        raise ValueError(f"n_jobs must be a positive integer or None, got {n_jobs}")
    job_seed = resolve_job_seed(rng)
    chunks = list(enumerate(partition_samples(n_permutations, permutations_per_shard)))
    n_jobs = max(1, min(n_jobs, len(chunks) or 1))
    assignments = [chunks[worker::n_jobs] for worker in range(n_jobs)]
    if n_jobs == 1:
        reports = [_permutation_worker(game, assignments[0], job_seed, antithetic)]
    else:
        try:
            payload = pickle.dumps(game, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as error:  # unpicklable game: same plan, one process
            warnings.warn(
                f"game is not picklable ({error}); running permutation shards "
                "in-process — estimates are identical, only slower",
                RuntimeWarning,
                stacklevel=3,
            )
            reports = [_permutation_worker(game, chunk_list, job_seed, antithetic)
                       for chunk_list in assignments]
        else:
            tasks = [(payload, chunk_list, job_seed, antithetic)
                     for chunk_list in assignments]
            reports = run_worker_tasks(_permutation_worker, tasks, n_jobs)

    all_players = game.players
    merged: dict[Player, RunningMean] = {player: RunningMean() for player in all_players}
    n_walks = 0
    evaluations = 0
    results = [entry for report in reports for entry in report]
    results.sort(key=lambda entry: entry[0])
    for _, (trackers, chunk_walks, chunk_evaluations) in results:
        for player, tracker in trackers.items():
            merged[player].merge(tracker)
        n_walks += chunk_walks
        evaluations += chunk_evaluations
    values = {p: merged[p].mean for p in all_players if p in requested}
    errors = {p: merged[p].standard_error for p in all_players if p in requested}
    return ShapleyResult(
        values=values,
        standard_errors=errors,
        n_samples=n_walks,
        n_evaluations=evaluations,
        method="permutation-sampling"
        + ("-antithetic" if antithetic else "") + "-sharded",
    )


def permutation_shapley(
    game: CooperativeGame,
    n_permutations: int = 200,
    players: Iterable[Player] | None = None,
    rng=None,
    antithetic: bool = False,
    n_jobs: int | None = None,
    permutations_per_shard: int = 64,
) -> ShapleyResult:
    """Estimate Shapley values from ``n_permutations`` random permutations.

    Parameters
    ----------
    game:
        The cooperative game to evaluate.
    n_permutations:
        Number of sampled permutations (each permutation contributes one
        marginal-contribution sample per player).
    players:
        Optional subset of players to estimate (all players are walked either
        way, since the permutation visit order determines every coalition).
    rng:
        Seed or :class:`numpy.random.Generator`.
    antithetic:
        Also evaluate each permutation reversed (doubling the per-permutation
        cost but reducing variance for monotone games).
    n_jobs:
        ``None`` (default) keeps the sequential single-stream estimator.  An
        integer shards the permutations into seeded chunks executed on that
        many worker processes (``1`` runs the plan in-process); estimates are
        bit-identical for every ``n_jobs >= 1`` but differ from the
        sequential stream.  The game must be picklable for real fan-out;
        otherwise the plan runs in-process with a warning.
    permutations_per_shard:
        Chunk granularity of the ``n_jobs`` plan; part of the seed partition,
        so hold it fixed when comparing runs.
    """
    requested = set(validate_players(game, players))
    if n_jobs is not None:
        return _sharded_permutation_shapley(
            game, n_permutations, requested, rng, antithetic,
            int(n_jobs), permutations_per_shard,
        )
    rng = make_rng(rng)
    all_players = game.players
    trackers, n_walks, evaluations = _walk_permutations(
        game, all_players, n_permutations, rng, antithetic
    )
    values = {p: trackers[p].mean for p in all_players if p in requested}
    errors = {p: trackers[p].standard_error for p in all_players if p in requested}
    return ShapleyResult(
        values=values,
        standard_errors=errors,
        n_samples=n_walks,
        n_evaluations=evaluations,
        method="permutation-sampling" + ("-antithetic" if antithetic else ""),
    )


def stratified_permutation_shapley(
    game: CooperativeGame,
    n_permutations_per_position: int = 20,
    player: Player | None = None,
    rng=None,
) -> ShapleyResult:
    """Stratified estimator: sample coalitions separately for each coalition size.

    The Shapley value is the average over coalition sizes of the expected
    marginal contribution at that size; sampling each size ("stratum")
    separately guarantees every size is represented, which plain permutation
    sampling only achieves in expectation.  Used by the sampling-strategy
    ablation (E10).
    """
    rng = make_rng(rng)
    all_players = game.players
    n = len(all_players)
    targets = [player] if player is not None else list(all_players)
    values: dict[Player, float] = {}
    errors: dict[Player, float] = {}
    evaluations = 0

    for target in targets:
        others = [p for p in all_players if p != target]
        stratum_means: list[float] = []
        stratum_vars: list[float] = []
        for size in range(n):
            tracker = RunningMean()
            for _ in range(n_permutations_per_position):
                if size and others:
                    chosen = rng.choice(len(others), size=min(size, len(others)), replace=False)
                    coalition = frozenset(others[int(i)] for i in chosen)
                else:
                    coalition = frozenset()
                marginal = game.value(coalition | {target}) - game.value(coalition)
                evaluations += 2
                tracker.update(marginal)
            stratum_means.append(tracker.mean)
            stratum_vars.append(tracker.variance / max(1, tracker.count))
        values[target] = float(np.mean(stratum_means))
        errors[target] = float(np.sqrt(np.sum(stratum_vars)) / n)

    return ShapleyResult(
        values=values,
        standard_errors=errors,
        n_samples=n_permutations_per_position * n,
        n_evaluations=evaluations,
        method="stratified-sampling",
    )
