"""Exact Shapley values by subset enumeration.

This is the computation the paper uses for denial constraints: "For
constraints, we can use the formula directly as their number is typically
small" (Section 2.3).  The cost is ``2^n`` characteristic-function
evaluations (with memoisation), so it is only appropriate for small player
sets — the benchmark ``bench_scaling_dcs`` measures exactly where the
exponential blow-up makes the permutation estimator preferable.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from repro.shapley.game import (
    CooperativeGame,
    MemoisedGame,
    Player,
    ShapleyResult,
    shapley_weight,
    validate_players,
)


def exact_shapley_single(game: CooperativeGame, player: Player) -> float:
    """Exact Shapley value of one player, straight from the definition."""
    players = game.players
    if player not in players:
        raise KeyError(f"unknown player {player!r}")
    others = [p for p in players if p != player]
    n_players = len(players)
    total = 0.0
    for size in range(len(others) + 1):
        weight = shapley_weight(size, n_players)
        for subset in combinations(others, size):
            coalition = frozenset(subset)
            marginal = game.value(coalition | {player}) - game.value(coalition)
            total += weight * marginal
    return total


def exact_shapley(game: CooperativeGame, players: Iterable[Player] | None = None) -> ShapleyResult:
    """Exact Shapley values for all (or a subset of) players.

    The characteristic function is memoised, so the total number of distinct
    evaluations is at most ``2^n`` regardless of how many players are asked
    for.
    """
    memoised = MemoisedGame(game)
    requested = validate_players(game, players)
    values = {player: exact_shapley_single(memoised, player) for player in requested}
    return ShapleyResult(
        values=values,
        n_samples=0,
        n_evaluations=memoised.evaluations,
        method="exact-enumeration",
    )


def exact_shapley_from_winning_sets(
    players: Iterable[Player], winning_sets: Iterable[frozenset]
) -> ShapleyResult:
    """Exact Shapley values of a *monotone binary* game given its minimal winning sets.

    A coalition has value 1 iff it contains at least one of ``winning_sets``.
    This closed-form helper mirrors how the paper reasons about Example 2.3
    ("Algorithm 1 will repair t5[C] only if we have the DCs {C1, C2}, or
    {C3}") and is used by the tests as an independent cross-check of the
    generic engine.
    """
    players = tuple(players)
    winning = [frozenset(w) for w in winning_sets]

    def value(coalition: frozenset) -> float:
        return 1.0 if any(w <= coalition for w in winning) else 0.0

    return exact_shapley(CallableGameLocal(players, value))


class CallableGameLocal(CooperativeGame):
    """Small local adapter (kept separate to avoid an import cycle with game.py)."""

    def __init__(self, players, value_function):
        self._players = tuple(players)
        self._value_function = value_function

    @property
    def players(self):
        return self._players

    def value(self, coalition: frozenset) -> float:
        return float(self._value_function(frozenset(coalition)))
