"""Copy-on-write overlay storage.

The Shapley sampling loop evaluates tens of thousands of *perturbed* table
instances, each differing from the dirty table in a sparse set of cells.
Materialising each instance as a full :class:`~repro.engine.storage.ColumnStore`
copy makes every oracle query pay O(cells) before any real work starts.

:class:`OverlayStore` removes that cost: it satisfies the ``ColumnStore`` read
interface while holding only a sparse ``{(row, attribute): value}`` delta on
top of a shared, immutable base store.  Reads consult the delta first and fall
through to the base; writes go into the delta (the base is never touched);
fingerprints — the repair oracle's memoisation keys — are derived from the
base's cached fingerprint plus the sorted delta, so hashing a perturbed
instance is O(|delta|) instead of O(cells).

The delta dictionary is *shared* with the owning
:class:`~repro.dataset.table.PerturbationView` and is kept normalised: it
never contains an entry whose value equals the base cell (null-aware), which
makes equal contents produce equal fingerprints regardless of how the delta
was built.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.engine.storage import (
    ColumnStore,
    Fingerprint,
    stores_equal,
    values_differ,
)
from repro.errors import UnknownAttributeError, UnknownRowError

_MISSING = object()

#: shared empty encoded-delta arrays for untouched columns (read-only)
_EMPTY_ROWS = np.empty(0, dtype=np.int64)
_EMPTY_ROWS.flags.writeable = False
_EMPTY_CODES = np.empty(0, dtype=np.int32)
_EMPTY_CODES.flags.writeable = False


class OverlayStore:
    """A sparse cell delta layered over a base :class:`ColumnStore`.

    Parameters
    ----------
    base:
        The shared base store.  It must not be mutated while overlays built on
        it are alive (the library's views are only ever built over frozen
        snapshots such as the dirty table).
    delta:
        Mapping ``(row, attribute) -> value`` of overridden cells.  The mapping
        is *shared*, not copied: the owning view normalises it on construction
        and :meth:`set_value` keeps it normalised afterwards.
    """

    __slots__ = ("_base", "_delta", "_by_row", "_by_column", "_materialized",
                 "_encoded_cache", "_fingerprint", "change_log")

    def __init__(self, base: ColumnStore, delta: dict):
        self._base = base
        self._delta = delta
        self._by_row: dict[int, dict[str, Any]] | None = None
        self._by_column: dict[str, dict[int, Any]] | None = None
        self._materialized: dict[str, np.ndarray] = {}
        #: per-column encoded delta, ``name -> (rows, codes) | None``; filled
        #: lazily by :meth:`encoded_delta_arrays`, primed from outside by
        #: :meth:`adopt_encoded_delta`, invalidated per column on write
        self._encoded_cache: dict[str, Any] = {}
        self._fingerprint: Fingerprint | None = None
        #: append-only ``(row, attribute)`` log of every :meth:`set_value`,
        #: including writes that restore the base value.  Second-order
        #: violation maintenance (:class:`~repro.constraints.incremental.RepairWalk`)
        #: reads it at independent positions to derive view→view deltas
        #: without ever snapshotting the delta dict.
        self.change_log: list[tuple[int, str]] = []

    # -- basic introspection ---------------------------------------------------

    @property
    def base(self) -> ColumnStore:
        return self._base

    @property
    def column_names(self) -> tuple[str, ...]:
        return self._base.column_names

    @property
    def n_rows(self) -> int:
        return self._base.n_rows

    @property
    def n_columns(self) -> int:
        return self._base.n_columns

    def __len__(self) -> int:
        return self._base.n_rows

    def __contains__(self, name: str) -> bool:
        return name in self._base

    # -- delta bookkeeping ------------------------------------------------------

    def _grouped(self) -> tuple[dict[int, dict[str, Any]], dict[str, dict[int, Any]]]:
        """The delta split by row and by column (built lazily, rebuilt on write)."""
        if self._by_row is None:
            by_row: dict[int, dict[str, Any]] = {}
            by_column: dict[str, dict[int, Any]] = {}
            for (row, name), value in self._delta.items():
                by_row.setdefault(row, {})[name] = value
                by_column.setdefault(name, {})[row] = value
            self._by_row = by_row
            self._by_column = by_column
        return self._by_row, self._by_column

    def delta_by_column(self) -> dict[str, dict[int, Any]]:
        """The delta grouped per column: ``{attribute: {row: value}}``.

        The returned mapping is the overlay's internal cache — callers must
        treat it as read-only.  This is the incremental detector's zero-copy
        window onto the delta (no per-cell objects are built).
        """
        return self._grouped()[1]

    def encoded_delta(self, name: str) -> "dict[int, int] | None":
        """One column's delta in code space: ``{row: int32 code}``.

        Codes come from the *base* store's append-only dictionaries, so they
        are directly comparable with the base's encoded column — the
        vectorised engine paths overlay them onto the base code array instead
        of re-encoding whole columns per coalition.  Returns ``None`` when
        the column (or a delta value) is unencodable; callers fall back to
        the object path.
        """
        overrides = self._grouped()[1].get(name)
        if not overrides:
            return {}
        encoding = self._base.encoding()
        encoded: dict[int, int] = {}
        for row, value in overrides.items():
            code = encoding.code_for(name, value)
            if code is None:
                return None
            encoded[row] = code
        return encoded

    def encoded_delta_arrays(self, name: str) -> "tuple[np.ndarray, np.ndarray] | None":
        """One column's delta in code space as parallel ``(rows, codes)`` arrays.

        The bulk sibling of :meth:`encoded_delta`: rows are ascending
        ``int64``, codes ``int32`` from the base dictionaries, the whole
        override set encoded in one vectorised
        :meth:`~repro.engine.encoding.TableEncoding.encode_delta` pass and
        cached per column.  ``None`` marks an unencodable column (object-path
        fallback), exactly when :meth:`encoded_delta` would return ``None``.
        """
        cached = self._encoded_cache.get(name, _MISSING)
        if cached is not _MISSING:
            return cached
        overrides = self._grouped()[1].get(name)
        if not overrides:
            result = (_EMPTY_ROWS, _EMPTY_CODES)
        else:
            result = self._base.encoding().encode_delta(name, overrides)
        self._encoded_cache[name] = result
        return result

    def adopt_encoded_delta(self, name: str, rows: np.ndarray,
                            codes: np.ndarray) -> None:
        """Install a precomputed encoded delta for ``name``.

        The coalition sampler's priming hook: deterministic-policy overlays
        are born in code space (one masked slice of a precomputed per-column
        encoding), so the view never re-encodes them.  The caller guarantees
        ``rows`` ascend and the pair matches the column's current delta
        contents under the base dictionaries.
        """
        self._encoded_cache[name] = (rows, codes)

    # -- access ---------------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        """The column with the delta applied (read-only; cached per column)."""
        cached = self._materialized.get(name)
        if cached is not None:
            return cached
        _, by_column = self._grouped()
        overrides = by_column.get(name)
        if not overrides:
            column = self._base.column(name)
        else:
            column = self._base.column(name).copy()
            for row, value in overrides.items():
                column[row] = value
            column.flags.writeable = False
        self._materialized[name] = column
        return column

    def value(self, row: int, name: str) -> Any:
        value = self._delta.get((row, name), _MISSING)
        if value is not _MISSING:
            return value
        return self._base.value(row, name)

    def row(self, row: int) -> tuple[Any, ...]:
        base_row = self._base.row(row)
        by_row, _ = self._grouped()
        overrides = by_row.get(row)
        if not overrides:
            return base_row
        return tuple(
            overrides.get(name, value)
            for name, value in zip(self._base.column_names, base_row)
        )

    def iter_rows(self) -> Iterator[tuple[Any, ...]]:
        for i in range(self.n_rows):
            yield self.row(i)

    # -- mutation --------------------------------------------------------------

    def set_value(self, row: int, name: str, value: Any) -> None:
        """Write into the delta (the base store is never modified).

        Writing a value equal to the base cell removes the delta entry, so the
        delta stays normalised and fingerprints of equal contents stay equal.
        """
        if name not in self._base:
            raise UnknownAttributeError(name, self._base.column_names)
        if not 0 <= row < self._base.n_rows:
            raise UnknownRowError(row, self._base.n_rows)
        self.change_log.append((row, name))
        key = (row, name)
        if values_differ(self._base.value(row, name), value):
            self._delta[key] = value
            if self._by_row is not None:
                self._by_row.setdefault(row, {})[name] = value
                self._by_column.setdefault(name, {})[row] = value
        else:
            self._delta.pop(key, None)
            if self._by_row is not None:
                row_group = self._by_row.get(row)
                if row_group is not None:
                    row_group.pop(name, None)
                    if not row_group:
                        del self._by_row[row]
                column_group = self._by_column.get(name)
                if column_group is not None:
                    column_group.pop(row, None)
                    if not column_group:
                        del self._by_column[name]
        self._materialized.pop(name, None)
        self._encoded_cache.pop(name, None)
        self._fingerprint = None

    def copy(self) -> ColumnStore:
        """Materialise the overlay into an independent plain :class:`ColumnStore`."""
        clone = ColumnStore.__new__(ColumnStore)
        clone._names = self._base.column_names
        clone._n_rows = self._base.n_rows
        clone._columns = {
            name: self.column(name).copy() for name in self._base.column_names
        }
        clone._fingerprint = None
        clone._encoding = None
        return clone

    # -- comparison / hashing helpers -------------------------------------------

    def fingerprint(self) -> Fingerprint:
        """Delta-derived memoisation key: O(|delta|) given a fingerprinted base.

        Two overlays over equal bases with equal effective contents produce
        equal fingerprints (the delta is normalised); an overlay never equals a
        plain store's fingerprint, which only costs the oracle a cache miss,
        never a wrong answer.
        """
        if self._fingerprint is None:
            delta_items = tuple(
                (row, name, self._delta[(row, name)])
                for row, name in sorted(self._delta.keys())
            )
            self._fingerprint = Fingerprint(
                ("overlay", self._base.fingerprint(), delta_items)
            )
        return self._fingerprint

    def equals(self, other) -> bool:
        """Content equality with any store exposing the read interface."""
        return stores_equal(self, other)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"OverlayStore({self.n_rows} rows x {self.n_columns} columns, "
            f"{len(self._delta)} overridden cells)"
        )
