"""Dictionary encoding: per-column value↔``int32``-code mappings.

The vectorised engine paths (``vectorized=True``) evaluate FD re-checks,
mixed-group detection and greedy ``count_if`` trials as comparisons over
integer code arrays instead of Python-object loops.  The encoding layer that
makes this possible lives here:

* :class:`ColumnDictionary` — one column's value↔code mapping.  Code ``0`` is
  reserved for NULL (``None`` / ``NaN``); real values get codes ``1..n`` in
  first-seen order.  The dictionary only ever *grows* (append-only), so codes
  assigned against the base table stay valid for every overlay delta built on
  top of it — a perturbed cell just appends a new code if its value is unseen.
* :class:`TableEncoding` — the per-table bundle: one dictionary per column,
  lazily-encoded base code arrays, and the encode/check telemetry surfaced
  through ``oracle.statistics()``.

Both classes are plain-data and pickle cleanly, so the encoding travels
inside ``ExplainJobSpec`` (the spec pickles the whole dirty table) and a warm
worker re-uses the parent's dictionaries for its resident lifetime instead of
re-encoding per shard.

Values that are unhashable cannot be dictionary keys; such a column is marked
non-encodable and every check touching it falls back to the object path (the
``fallback_checks`` counter keeps that visible).
"""

from __future__ import annotations

import time
from typing import Any, Iterable

import numpy as np

#: the reserved code for NULL cells (``None`` / ``NaN``)
NULL_CODE = 0


class ColumnDictionary:
    """Append-only value↔code mapping for one column.

    Codes are dense ``int32`` starting at 1 (0 is :data:`NULL_CODE`); the
    decode table keeps the *original* value objects, so decoding returns the
    identical objects the object path would see.
    """

    __slots__ = ("_code_of", "_values", "encodable")

    def __init__(self) -> None:
        self._code_of: dict[Any, int] = {}
        #: decode table; index 0 is the NULL sentinel
        self._values: list[Any] = [None]
        self.encodable = True

    def __len__(self) -> int:
        """Number of distinct non-null values seen so far."""
        return len(self._code_of)

    def code_for(self, value: Any, *, is_null) -> int:
        """The code of ``value``, appending a fresh one if unseen."""
        if is_null(value):
            return NULL_CODE
        code = self._code_of.get(value)
        if code is None:
            code = len(self._values)
            self._code_of[value] = code
            self._values.append(value)
        return code

    def decode(self, code: int) -> Any:
        return self._values[code]

    def encode_values(self, values: Iterable[Any], mask: np.ndarray,
                      out: np.ndarray) -> None:
        """Fill ``out`` with codes for ``values`` (``mask`` marks nulls)."""
        code_of = self._code_of
        decode = self._values
        for i, value in enumerate(values):
            if mask[i]:
                out[i] = NULL_CODE
                continue
            code = code_of.get(value)
            if code is None:
                code = len(decode)
                code_of[value] = code
                decode.append(value)
            out[i] = code

    def encode_bulk(self, values: np.ndarray, mask: np.ndarray,
                    out: np.ndarray) -> None:
        """Vectorised :meth:`encode_values`: one factorisation per call.

        ``np.unique`` collapses the column to its distinct values, one
        dictionary probe per *distinct* value builds an ``int32`` lookup
        array, and a single gather translates the whole column.  Novel values
        are appended to the decode table in first-appearance order — exactly
        the order the per-value loop would assign, so both paths grow the
        dictionary identically (property-tested).  Falls back to the
        per-value loop when the values do not sort (mixed-type columns);
        unhashable values raise ``TypeError`` either way, with the dictionary
        left consistent.
        """
        nonnull = np.nonzero(~mask)[0]
        out[mask] = NULL_CODE
        if nonnull.size == 0:
            return
        present = values[nonnull]
        try:
            uniq, first, inverse = np.unique(
                present, return_index=True, return_inverse=True
            )
        except TypeError:
            # unsortable mixed types — the hash-based loop handles them fine
            self.encode_values(values, mask, out)
            return
        code_of = self._code_of
        decode = self._values
        lookup = np.empty(len(uniq), dtype=np.int32)
        pending: list[Any] = []
        try:
            # visit distinct values in first-appearance order so novel codes
            # are assigned exactly as the per-value loop would
            for position in np.argsort(first, kind="stable"):
                value = uniq[position]
                code = code_of.get(value)
                if code is None:
                    code = len(decode) + len(pending)
                    code_of[value] = code
                    pending.append(value)
                lookup[position] = code
        finally:
            # one batched append; also runs on TypeError (unhashable value
            # mid-loop) so codes already handed out stay decodable
            if pending:
                decode.extend(pending)
        out[nonnull] = lookup[inverse]


class TableEncoding:
    """Per-table dictionary bundle with cached base code arrays + telemetry.

    The encoding is attached to a :class:`~repro.engine.storage.ColumnStore`
    (one per base table), shared by every copy of that store, and invalidated
    per-column on base mutation.  Dictionaries are append-only, so deltas and
    overlays built while an encoding exists never invalidate existing codes.
    """

    __slots__ = ("_dicts", "_codes", "encode_seconds", "vectorized_checks",
                 "fallback_checks", "_absorbed_sizes")

    def __init__(self) -> None:
        self._dicts: dict[str, ColumnDictionary] = {}
        self._codes: dict[str, np.ndarray] = {}
        #: wall-clock spent encoding base columns into code arrays
        self.encode_seconds = 0.0
        #: constraint checks evaluated over code arrays
        self.vectorized_checks = 0
        #: checks that fell back to the object path (non-equality DC
        #: predicates, unencodable columns)
        self.fallback_checks = 0
        #: per-column dictionary-size high-water marks absorbed from worker
        #: telemetry — a worker may have encoded columns this encoding never
        #: touched, and dropping them would understate the run
        self._absorbed_sizes: dict[str, int] = {}

    def dictionary(self, name: str) -> ColumnDictionary:
        dictionary = self._dicts.get(name)
        if dictionary is None:
            dictionary = self._dicts[name] = ColumnDictionary()
        return dictionary

    def invalidate(self, name: str) -> None:
        """Drop the cached code array after a base-store cell write.

        The dictionary itself survives — it is append-only, so existing codes
        stay correct; only the materialised base array is stale.
        """
        self._codes.pop(name, None)

    def codes(self, store, name: str) -> np.ndarray | None:
        """The base store's column as an ``int32`` code array (cached).

        Returns ``None`` when the column holds unhashable values — callers
        must fall back to the object path (and count it).
        """
        codes = self._codes.get(name)
        if codes is not None:
            return codes
        dictionary = self.dictionary(name)
        if not dictionary.encodable:
            return None
        from repro.engine.storage import null_mask

        column = store.column(name)
        mask = null_mask(column)
        out = np.empty(len(column), dtype=np.int32)
        start = time.perf_counter()
        try:
            dictionary.encode_bulk(column, mask, out)
        except TypeError:
            # unhashable values in this column — permanently object-path
            dictionary.encodable = False
            return None
        finally:
            self.encode_seconds += time.perf_counter() - start
        self._codes[name] = out
        return out

    def code_for(self, name: str, value: Any) -> int | None:
        """The code of one value in ``name``'s dictionary (grown on demand).

        ``None`` when the column is unencodable or the value unhashable.
        """
        from repro.engine.storage import is_null

        dictionary = self.dictionary(name)
        if not dictionary.encodable:
            return None
        try:
            return dictionary.code_for(value, is_null=is_null)
        except TypeError:
            return None

    def encode_delta(
        self, name: str, overrides: "dict[int, Any]"
    ) -> "tuple[np.ndarray, np.ndarray] | None":
        """Encode one column's override set ``{row: value}`` in one bulk pass.

        Returns parallel ``(rows int64, codes int32)`` arrays sorted by row,
        with novel values appended to ``name``'s dictionary in the same order
        the per-value :meth:`code_for` loop would produce (dict-insertion
        order of ``overrides``).  ``None`` when the column is unencodable or
        a value is unhashable — mirroring :meth:`code_for`, the column's
        ``encodable`` flag is *not* flipped: only base-column contents decide
        that.
        """
        dictionary = self.dictionary(name)
        if not dictionary.encodable:
            return None
        n = len(overrides)
        if n == 0:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int32))
        from repro.engine.storage import null_mask

        rows = np.fromiter(overrides.keys(), dtype=np.int64, count=n)
        values = np.fromiter(overrides.values(), dtype=object, count=n)
        codes = np.empty(n, dtype=np.int32)
        start = time.perf_counter()
        try:
            dictionary.encode_bulk(values, null_mask(values), codes)
        except TypeError:
            return None
        finally:
            self.encode_seconds += time.perf_counter() - start
        order = np.argsort(rows, kind="stable")
        rows, codes = rows[order], codes[order]
        # shared across sibling views (cache carry-over) — freeze them
        rows.flags.writeable = False
        codes.flags.writeable = False
        return rows, codes

    def dictionary_sizes(self) -> dict[str, int]:
        """Distinct non-null values per encoded column (telemetry).

        The union of this encoding's own dictionaries and the per-column
        high-water marks absorbed from worker telemetry — a column only one
        worker ever encoded still shows up, at that worker's size.
        """
        sizes = dict(self._absorbed_sizes)
        for name, dictionary in self._dicts.items():
            size = len(dictionary)
            if size > sizes.get(name, 0):
                sizes[name] = size
        return dict(sorted(sizes.items()))

    def telemetry(self) -> dict[str, Any]:
        return {
            "encode_seconds": round(self.encode_seconds, 6),
            "vectorized_checks": self.vectorized_checks,
            "fallback_checks": self.fallback_checks,
            "dictionary_sizes": self.dictionary_sizes(),
        }

    def absorb_counters(self, telemetry: dict) -> None:
        """Fold a worker's shipped telemetry into this encoding's counters.

        Check counts and encode time are additive; ``dictionary_sizes``
        merge as per-column high-water marks over the **union** of columns —
        a worker's dictionary for a column the parent never encoded must not
        be dropped.
        """
        self.encode_seconds += telemetry.get("encode_seconds", 0.0)
        self.vectorized_checks += telemetry.get("vectorized_checks", 0)
        self.fallback_checks += telemetry.get("fallback_checks", 0)
        for name, size in telemetry.get("dictionary_sizes", {}).items():
            if size > self._absorbed_sizes.get(name, 0):
                self._absorbed_sizes[name] = size

    def reset_counters(self) -> None:
        self.encode_seconds = 0.0
        self.vectorized_checks = 0
        self.fallback_checks = 0
        self._absorbed_sizes = {}

    def __getstate__(self):
        return (self._dicts, self._codes, self.encode_seconds,
                self.vectorized_checks, self.fallback_checks,
                self._absorbed_sizes)

    def __setstate__(self, state):
        if len(state) == 5:  # pickles from before absorbed-size tracking
            state = state + ({},)
        (self._dicts, self._codes, self.encode_seconds,
         self.vectorized_checks, self.fallback_checks,
         self._absorbed_sizes) = state
