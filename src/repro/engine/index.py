"""Hash indexes over columns, maintainable under sparse cell deltas.

Violation detection for denial constraints with equality predicates
(``t1[A] = t2[A]``) is driven by hash partitioning: rows are grouped by the
value of the equality attribute, and only rows inside a group can possibly
violate the constraint.  This turns the quadratic pair scan into work
proportional to the sum of squared group sizes, which is what makes the
Shapley sampling loop (thousands of repair invocations) tractable.

Both index classes additionally support *delta maintenance*
(:meth:`~HashIndex.apply_delta` / :meth:`~HashIndex.revert_delta`): given the
sparse cell delta of a perturbed table instance, only the touched row ids are
moved between groups, so the incremental violation detector
(:mod:`repro.constraints.incremental`) can reuse one index across thousands
of perturbations instead of rebuilding it from scratch per instance.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import defaultdict
from typing import Any, Iterable, Iterator, Mapping

import numpy as np

from repro.engine.storage import is_null, null_mask


def _group_remove(groups: dict, key: Any, row: int) -> None:
    """Remove ``row`` from its (sorted) group, dropping the group if emptied."""
    rows = groups.get(key)
    if rows is None:
        return
    position = bisect_left(rows, row)
    if position < len(rows) and rows[position] == row:
        del rows[position]
    if not rows:
        del groups[key]


def _group_insert(groups: dict, key: Any, row: int) -> None:
    """Insert ``row`` into its group, keeping the row ids sorted."""
    rows = groups.get(key)
    if rows is None:
        groups[key] = [row]
    else:
        insort(rows, row)


class HashIndex:
    """Maps each value of one column to the sorted list of row ids holding it.

    Group row ids are kept sorted ascending — guaranteed at build time and
    preserved by :meth:`apply_delta` / :meth:`revert_delta` (insertions use
    binary search).

    Null cells are excluded from the index: a null never matches an equality
    predicate (this mirrors SQL semantics and is what the paper's cell-coalition
    definition needs — a nulled-out cell cannot create a violation).
    """

    __slots__ = ("attribute", "_groups")

    def __init__(self, store, attribute: str):
        self.attribute = attribute
        groups: dict[Any, list[int]] = defaultdict(list)
        column = store.column(attribute)
        try:
            # one C-level null scan; valid rows come back ascending, so group
            # insertion order matches the per-cell loop exactly
            valid_rows = np.nonzero(~null_mask(column))[0].tolist()
        except TypeError:  # exotic values where elementwise == misbehaves
            valid_rows = [row_id for row_id, value in enumerate(column)
                          if not is_null(value)]
        for row_id in valid_rows:
            groups[column[row_id]].append(row_id)
        # enumeration order is ascending, so the append-built groups are
        # already sorted; sort defensively to make the invariant explicit
        self._groups: dict[Any, list[int]] = {
            value: sorted(rows) for value, rows in groups.items()
        }

    def rows_with_value(self, value: Any) -> list[int]:
        """Row ids whose cell equals ``value`` (empty list if none)."""
        if is_null(value):
            return []
        return list(self._groups.get(value, ()))

    def groups(self) -> Iterator[tuple[Any, list[int]]]:
        """Iterate over ``(value, row_ids)`` groups."""
        for value, rows in self._groups.items():
            yield value, list(rows)

    def values(self) -> list[Any]:
        return list(self._groups)

    def __len__(self) -> int:
        return len(self._groups)

    # -- delta maintenance -----------------------------------------------------

    def apply_delta(self, changes: Mapping[int, tuple[Any, Any]]) -> None:
        """Move touched rows between groups for ``{row: (old_value, new_value)}``.

        Null values mean "absent from the index" on that side, so a cell
        nulled out by a perturbation simply leaves its group.  Only the rows
        in ``changes`` are touched — cost is O(|changes| · log group) instead
        of a full rebuild.
        """
        groups = self._groups
        for row, (old_value, new_value) in changes.items():
            if not is_null(old_value):
                _group_remove(groups, old_value, row)
            if not is_null(new_value):
                _group_insert(groups, new_value, row)

    def revert_delta(self, changes: Mapping[int, tuple[Any, Any]]) -> None:
        """Undo a previous :meth:`apply_delta` with the same ``changes``."""
        groups = self._groups
        for row, (old_value, new_value) in changes.items():
            if not is_null(new_value):
                _group_remove(groups, new_value, row)
            if not is_null(old_value):
                _group_insert(groups, old_value, row)


class MultiColumnIndex:
    """Index on a tuple of columns, used by multi-equality constraints.

    Group row ids are kept sorted ascending, exactly like :class:`HashIndex`.
    Rows containing a null in any of the indexed columns are skipped for the
    same reason as in :class:`HashIndex`.
    """

    __slots__ = ("attributes", "_groups", "_build_keys")

    def __init__(self, store, attributes: Iterable[str]):
        self.attributes = tuple(attributes)
        groups: dict[tuple, list[int]] = defaultdict(list)
        columns = [store.column(attr) for attr in self.attributes]
        build_keys: list[tuple | None] = []
        try:
            if not columns:
                raise TypeError("no indexed columns")
            invalid = null_mask(columns[0])
            for column in columns[1:]:
                invalid |= null_mask(column)
            invalid = invalid.tolist()
        except TypeError:  # exotic values where elementwise == misbehaves
            invalid = [any(is_null(column[row_id]) for column in columns)
                       for row_id in range(store.n_rows)]
        for row_id in range(store.n_rows):
            if invalid[row_id]:
                build_keys.append(None)
                continue
            key = tuple(column[row_id] for column in columns)
            build_keys.append(key)
            groups[key].append(row_id)
        self._groups = {key: sorted(rows) for key, rows in groups.items()}
        #: per-row key at construction time (None when a component was null);
        #: NOT updated by apply_delta — it records the base snapshot's keys
        self._build_keys = build_keys

    def build_key_of(self, row: int) -> tuple | None:
        """The row's key in the store the index was built over.

        Unaffected by :meth:`apply_delta` — the incremental detector uses this
        as an O(1) lookup of base-snapshot keys while a delta is applied.
        """
        return self._build_keys[row]

    def fork(self) -> "MultiColumnIndex":
        """An independent copy sharing the (immutable) build-time keys.

        A fork can have deltas applied and *kept* applied for the lifetime of
        a repair walk, while the original keeps serving the apply/revert
        pattern of per-instance detection.  Cost is O(groups + rows in
        groups); the ``_build_keys`` list is shared because it is never
        mutated after construction.
        """
        clone = MultiColumnIndex.__new__(MultiColumnIndex)
        clone.attributes = self.attributes
        clone._groups = {key: list(rows) for key, rows in self._groups.items()}
        clone._build_keys = self._build_keys
        return clone

    def rows_with_key(self, key: tuple) -> list[int]:
        if any(is_null(part) for part in key):
            return []
        return list(self._groups.get(tuple(key), ()))

    def groups(self) -> Iterator[tuple[tuple, list[int]]]:
        for key, rows in self._groups.items():
            yield key, list(rows)

    def __len__(self) -> int:
        return len(self._groups)

    # -- delta maintenance -----------------------------------------------------

    def apply_delta(self, changes: Mapping[int, tuple[tuple | None, tuple | None]]) -> None:
        """Move touched rows between groups for ``{row: (old_key, new_key)}``.

        ``None`` on either side means the row is absent from the index on that
        side (its key contains a null).  Only the rows in ``changes`` are
        touched.
        """
        groups = self._groups
        for row, (old_key, new_key) in changes.items():
            if old_key is not None:
                _group_remove(groups, old_key, row)
            if new_key is not None:
                _group_insert(groups, new_key, row)

    def revert_delta(self, changes: Mapping[int, tuple[tuple | None, tuple | None]]) -> None:
        """Undo a previous :meth:`apply_delta` with the same ``changes``."""
        groups = self._groups
        for row, (old_key, new_key) in changes.items():
            if new_key is not None:
                _group_remove(groups, new_key, row)
            if old_key is not None:
                _group_insert(groups, old_key, row)
