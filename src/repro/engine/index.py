"""Hash indexes over columns.

Violation detection for denial constraints with equality predicates
(``t1[A] = t2[A]``) is driven by hash partitioning: rows are grouped by the
value of the equality attribute, and only rows inside a group can possibly
violate the constraint.  This turns the quadratic pair scan into work
proportional to the sum of squared group sizes, which is what makes the
Shapley sampling loop (thousands of repair invocations) tractable.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable, Iterator

from repro.engine.storage import ColumnStore, is_null


class HashIndex:
    """Maps each value of one column to the sorted list of row ids holding it.

    Null cells are excluded from the index: a null never matches an equality
    predicate (this mirrors SQL semantics and is what the paper's cell-coalition
    definition needs — a nulled-out cell cannot create a violation).
    """

    __slots__ = ("attribute", "_groups")

    def __init__(self, store: ColumnStore, attribute: str):
        self.attribute = attribute
        groups: dict[Any, list[int]] = defaultdict(list)
        column = store.column(attribute)
        for row_id, value in enumerate(column):
            if is_null(value):
                continue
            groups[value].append(row_id)
        self._groups: dict[Any, list[int]] = dict(groups)

    def rows_with_value(self, value: Any) -> list[int]:
        """Row ids whose cell equals ``value`` (empty list if none)."""
        if is_null(value):
            return []
        return list(self._groups.get(value, ()))

    def groups(self) -> Iterator[tuple[Any, list[int]]]:
        """Iterate over ``(value, row_ids)`` groups."""
        for value, rows in self._groups.items():
            yield value, list(rows)

    def values(self) -> list[Any]:
        return list(self._groups)

    def __len__(self) -> int:
        return len(self._groups)


class MultiColumnIndex:
    """Index on a tuple of columns, used by multi-equality constraints.

    Rows containing a null in any of the indexed columns are skipped for the
    same reason as in :class:`HashIndex`.
    """

    __slots__ = ("attributes", "_groups")

    def __init__(self, store: ColumnStore, attributes: Iterable[str]):
        self.attributes = tuple(attributes)
        groups: dict[tuple, list[int]] = defaultdict(list)
        columns = [store.column(attr) for attr in self.attributes]
        for row_id in range(store.n_rows):
            key = tuple(column[row_id] for column in columns)
            if any(is_null(part) for part in key):
                continue
            groups[key].append(row_id)
        self._groups = dict(groups)

    def rows_with_key(self, key: tuple) -> list[int]:
        if any(is_null(part) for part in key):
            return []
        return list(self._groups.get(tuple(key), ()))

    def groups(self) -> Iterator[tuple[tuple, list[int]]]:
        for key, rows in self._groups.items():
            yield key, list(rows)

    def __len__(self) -> int:
        return len(self._groups)
