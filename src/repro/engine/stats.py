"""Column and co-occurrence statistics.

The repair algorithms in the paper are statistics driven:

* Algorithm 1 repairs a violating ``City`` to ``argmax_c P[City = c]`` and a
  violating ``Country`` to ``argmax_c P[Country = c | City = t[City]]``.
* The HoloClean-style repairer scores candidate values by co-occurrence with
  the other cells of the tuple.
* The sampling-based cell-Shapley estimator (Example 2.5) replaces
  out-of-coalition cells with values drawn from the column distribution.

This module provides those three quantities over a :class:`ColumnStore`:
marginal distributions, conditional (pairwise) distributions and samplers.
Null cells are excluded from every count.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.config import make_rng
from repro.engine.storage import ColumnStore, is_null, null_mask, values_differ


_UNSET = object()
_NO_WINNER = object()  # memoised "no co-occurrence evidence" marker


class ColumnStatistics:
    """Marginal value distribution of a single column."""

    __slots__ = ("attribute", "_counts", "_total", "_most_common")

    def __init__(self, store: ColumnStore, attribute: str):
        self.attribute = attribute
        column = store.column(attribute)
        try:
            # one C-level null scan + Counter build instead of a per-cell loop;
            # Counter(iterable) keys in first-seen order, exactly like the loop
            counts = Counter(column[~null_mask(column)].tolist())
        except TypeError:  # exotic values where elementwise == misbehaves
            counts = Counter()
            for value in column:
                if not is_null(value):
                    counts[value] += 1
        self._counts = counts
        self._total = sum(counts.values())
        self._most_common = _UNSET

    @property
    def total(self) -> int:
        return self._total

    def count(self, value: Any) -> int:
        return self._counts.get(value, 0)

    def frequency(self, value: Any) -> float:
        """P[A = value] over non-null cells (0.0 on an all-null column)."""
        if self._total == 0:
            return 0.0
        return self._counts.get(value, 0) / self._total

    def most_common(self, default: Any = None) -> Any:
        """The modal value, ties broken deterministically by string order.

        Memoised until the next :meth:`apply_update` — repair rules ask for
        the mode once per violating tuple.
        """
        if not self._counts:
            return default
        if self._most_common is _UNSET:
            best_count = max(self._counts.values())
            self._most_common = min(
                (value for value, count in self._counts.items() if count == best_count),
                key=repr,
            )
        return self._most_common

    def domain(self) -> list[Any]:
        """Distinct non-null values, deterministically ordered."""
        return sorted(self._counts, key=repr)

    def sample(self, rng=None, size: int | None = None):
        """Draw value(s) from the empirical column distribution.

        This is exactly the replacement distribution of Example 2.5: "values
        of cells that are not part of the coalition will be replaced with a
        sample value from their column distribution".

        Values are ordered deterministically (by ``repr``, like
        :meth:`domain` and :meth:`most_common` tie-breaks) rather than by
        counter insertion order, so two statistics describing the same
        contents — one built from scratch, one delta-maintained through
        :meth:`apply_update` — map an RNG draw to the same value.  The live
        session's "update + explain ≡ fresh session" invariant needs exactly
        that.
        """
        rng = make_rng(rng)
        values = sorted(self._counts.keys(), key=repr)
        if not values:
            return None if size is None else [None] * size
        weights = np.array([self._counts[v] for v in values], dtype=float)
        weights /= weights.sum()
        if size is None:
            return values[int(rng.choice(len(values), p=weights))]
        picks = rng.choice(len(values), size=size, p=weights)
        return [values[int(i)] for i in picks]

    def apply_update(self, old_value: Any, new_value: Any) -> None:
        """Delta-maintain the counts for one cell changing ``old -> new``.

        Zero-count entries are removed so :meth:`domain`, :meth:`items` and
        :meth:`most_common` see exactly what a from-scratch rebuild would.
        """
        if not is_null(old_value):
            count = self._counts.get(old_value, 0)
            if count:
                if count == 1:
                    del self._counts[old_value]
                else:
                    self._counts[old_value] = count - 1
                self._total -= 1
        if not is_null(new_value):
            self._counts[new_value] += 1
            self._total += 1
        self._most_common = _UNSET

    def apply_delta(self, updates: Iterable[tuple[Any, Any]]) -> None:
        """Apply many ``(old, new)`` cell updates at once.

        The batch counterpart of :meth:`apply_update` (updates are
        order-insensitive on marginal counts), mirroring
        :meth:`~repro.engine.index.MultiColumnIndex.apply_delta`: the shared
        statistics engine moves one instance onto a perturbed overlay by its
        sparse delta instead of rebuilding the counts per instance.
        """
        for old_value, new_value in updates:
            self.apply_update(old_value, new_value)

    def revert_delta(self, updates: Iterable[tuple[Any, Any]]) -> None:
        """Undo a previous :meth:`apply_delta` with the same ``updates``."""
        for old_value, new_value in updates:
            self.apply_update(new_value, old_value)

    def fork(self) -> "ColumnStatistics":
        """An independent copy (counts and memo included).

        Forked statistics diverge from the original through
        :meth:`apply_update` — the paired oracle forks the first instance's
        statistics onto the second instead of re-scanning its columns.
        """
        clone = ColumnStatistics.__new__(ColumnStatistics)
        clone.attribute = self.attribute
        clone._counts = Counter(self._counts)
        clone._total = self._total
        clone._most_common = self._most_common
        return clone

    def entropy(self) -> float:
        """Shannon entropy of the column distribution (bits)."""
        if self._total == 0:
            return 0.0
        probabilities = np.array(
            [count / self._total for count in self._counts.values()], dtype=float
        )
        return float(-(probabilities * np.log2(probabilities)).sum())

    def items(self) -> Iterable[tuple[Any, int]]:
        return self._counts.items()


class CooccurrenceStatistics:
    """Pairwise conditional distributions ``P[B = b | A = a]``.

    Built lazily per attribute pair and cached, because the repair algorithms
    only ever condition on a handful of pairs (e.g. Country given City).
    """

    def __init__(self, store: ColumnStore):
        self._store = store
        self._pair_counts: dict[tuple[str, str], dict[Hashable, Counter]] = {}
        #: memo for most_probable, keyed (given, target, given_value);
        #: selectively invalidated by apply_cell_update
        self._argmax_memo: dict[tuple, Any] = {}

    def _counts_for(self, given: str, target: str) -> dict[Hashable, Counter]:
        key = (given, target)
        if key not in self._pair_counts:
            counts: dict[Hashable, Counter] = defaultdict(Counter)
            given_column = self._store.column(given)
            target_column = self._store.column(target)
            try:
                # both null masks in one pass each; the compressed zip visits
                # the surviving rows in the same ascending order as the loop
                valid = ~(null_mask(given_column) | null_mask(target_column))
                pairs = zip(given_column[valid].tolist(),
                            target_column[valid].tolist())
            except TypeError:  # exotic values where elementwise == misbehaves
                pairs = ((g, t) for g, t in zip(given_column, target_column)
                         if not is_null(g) and not is_null(t))
            for given_value, target_value in pairs:
                counts[given_value][target_value] += 1
            self._pair_counts[key] = dict(counts)
        return self._pair_counts[key]

    def conditional_probability(
        self, target: str, target_value: Any, given: str, given_value: Any
    ) -> float:
        """Return ``P[target = target_value | given = given_value]``."""
        counts = self._counts_for(given, target).get(given_value)
        if not counts:
            return 0.0
        total = sum(counts.values())
        return counts.get(target_value, 0) / total

    def conditional_probability_many(
        self, target: str, target_values: Sequence[Any], given: str, given_value: Any
    ) -> list[float]:
        """``[conditional_probability(target, v, given, given_value) for v in
        target_values]`` with the counts dict and its total fetched once.

        Greedy candidate scoring conditions every candidate of one cell on the
        same sibling value; each element is the identical
        ``count / total`` division the scalar method performs, so scores are
        bit-identical.
        """
        counts = self._counts_for(given, target).get(given_value)
        if not counts:
            return [0.0] * len(target_values)
        total = sum(counts.values())
        counts_get = counts.get
        return [counts_get(value, 0) / total for value in target_values]

    def most_probable(
        self, target: str, given: str, given_value: Any, default: Any = None
    ) -> Any:
        """``argmax_v P[target = v | given = given_value]``.

        Falls back to ``default`` when the conditioning value never co-occurs
        with a non-null target (e.g. the city is itself an unseen typo).
        Ties are broken deterministically by string order.
        """
        memo_key = (given, target, given_value)
        winner = self._argmax_memo.get(memo_key, _UNSET)
        if winner is _UNSET:
            counts = self._counts_for(given, target).get(given_value)
            if not counts:
                winner = _NO_WINNER
            else:
                best = max(counts.values())
                winner = min(
                    (value for value, count in counts.items() if count == best), key=repr
                )
            self._argmax_memo[memo_key] = winner
        return default if winner is _NO_WINNER else winner

    def cooccurrence_count(
        self, attr_a: str, value_a: Any, attr_b: str, value_b: Any
    ) -> int:
        """Number of rows where both cells carry the given values."""
        counts = self._counts_for(attr_a, attr_b).get(value_a)
        if not counts:
            return 0
        return counts.get(value_b, 0)

    def warm(self, given: str, target: str) -> None:
        """Force the ``(given, target)`` pair distribution to be built now.

        Used before :meth:`fork` so the forked copy carries the pair tables
        the repair rules will need instead of re-scanning per instance.
        """
        self._counts_for(given, target)

    def fork(self, store: ColumnStore) -> "CooccurrenceStatistics":
        """An independent copy reading sibling cells from ``store``.

        Only the pair tables built so far are copied; unbuilt pairs are built
        lazily from ``store`` as usual.
        """
        clone = CooccurrenceStatistics.__new__(CooccurrenceStatistics)
        clone._store = store
        clone._pair_counts = {
            key: {given_value: Counter(counter) for given_value, counter in counts.items()}
            for key, counts in self._pair_counts.items()
        }
        clone._argmax_memo = dict(self._argmax_memo)
        return clone

    # -- delta maintenance -----------------------------------------------------

    @staticmethod
    def _adjust(counts: dict[Hashable, Counter], given_value: Any,
                target_value: Any, delta: int) -> None:
        if is_null(given_value) or is_null(target_value):
            return
        counter = counts.get(given_value)
        if delta > 0:
            if counter is None:
                counter = counts[given_value] = Counter()
            counter[target_value] += delta
            return
        if counter is None:
            return
        counter[target_value] += delta
        if counter[target_value] <= 0:
            del counter[target_value]
        if not counter:
            del counts[given_value]

    def apply_cell_update(self, row: int, attribute: str,
                          old_value: Any, new_value: Any) -> None:
        """Delta-maintain every cached pair distribution touching ``attribute``.

        Must be called *after* the store has been updated: the changed cell's
        old/new values are passed in, all sibling cells are read from the
        (already-current) store.
        """
        for pair, counts in self._pair_counts.items():
            self._apply_cell_to_pair(pair, counts, row, attribute, old_value, new_value)

    def _apply_cell_to_pair(self, pair: tuple[str, str], counts: dict,
                            row: int, attribute: str,
                            old_value: Any, new_value: Any) -> None:
        """One cell update routed into one cached pair distribution."""
        given, target = pair
        memo = self._argmax_memo
        if given == attribute and target == attribute:
            self._adjust(counts, old_value, old_value, -1)
            self._adjust(counts, new_value, new_value, +1)
            memo.pop((given, target, old_value), None)
            memo.pop((given, target, new_value), None)
        elif given == attribute:
            sibling = self._store.value(row, target)
            self._adjust(counts, old_value, sibling, -1)
            self._adjust(counts, new_value, sibling, +1)
            memo.pop((given, target, old_value), None)
            memo.pop((given, target, new_value), None)
        elif target == attribute:
            sibling = self._store.value(row, given)
            self._adjust(counts, sibling, old_value, -1)
            self._adjust(counts, sibling, new_value, +1)
            memo.pop((given, target, sibling), None)

    def apply_delta(self, changes: Mapping[tuple[int, str], tuple[Any, Any]],
                    store) -> None:
        """Move the cached pair distributions onto the contents of ``store``.

        ``store`` must differ from the contents the statistics currently
        describe at exactly the cells in ``changes``
        (``{(row, attribute): (old_value, new_value)}``).  Unlike repeated
        :meth:`apply_cell_update` calls, the move is *row-wise*: when both
        cells of a cached pair change in the same row the old and new pair
        values come straight from ``changes``, so a multi-cell-per-row delta
        (a coalition overlay nulling several cells of one tuple) is applied
        exactly.  Affected argmax memo entries are invalidated; unaffected
        entries stay valid because their underlying counts did not move.

        After the call the statistics read sibling cells (and build new pair
        tables lazily) from ``store``.
        """
        if self._pair_counts and changes:
            by_attr: dict[str, dict[int, tuple[Any, Any]]] = {}
            for (row, attribute), update in changes.items():
                by_attr.setdefault(attribute, {})[row] = update
            self._move_rows(by_attr, store.value)
        self._store = store

    def _move_rows(self, by_attr: Mapping[str, Mapping[int, tuple[Any, Any]]],
                   sibling_of, pairs: Iterable[tuple[str, str]] | None = None) -> None:
        """Row-wise count moves for per-attribute change groups.

        ``sibling_of(row, attribute)`` must read the *new* contents; it is
        only consulted for cells not in ``by_attr`` (whose old and new values
        coincide).  ``pairs`` optionally restricts the move to a subset of the
        cached pair distributions — the shared statistics engine syncs one
        pair at a time, on demand.  Shared with the engine's lease path,
        which supplies a reader over override dicts + base columns instead of
        a store.
        """
        memo = self._argmax_memo
        adjust = self._adjust
        pair_items = (
            self._pair_counts.items() if pairs is None
            else [(pair, self._pair_counts[pair]) for pair in pairs]
        )
        for (given, target), counts in pair_items:
            given_changes = by_attr.get(given)
            target_changes = by_attr.get(target)
            if not given_changes and not target_changes:
                continue
            rows: set[int] = set()
            if given_changes:
                rows.update(given_changes)
            if target_changes:
                rows.update(target_changes)
            for row in rows:
                update = given_changes.get(row) if given_changes else None
                if update is not None:
                    old_given, new_given = update
                else:
                    old_given = new_given = sibling_of(row, given)
                update = target_changes.get(row) if target_changes else None
                if update is not None:
                    old_target, new_target = update
                else:
                    old_target = new_target = sibling_of(row, target)
                adjust(counts, old_given, old_target, -1)
                adjust(counts, new_given, new_target, +1)
                memo.pop((given, target, old_given), None)
                if new_given is not old_given:
                    memo.pop((given, target, new_given), None)

    def revert_delta(self, changes: Mapping[tuple[int, str], tuple[Any, Any]],
                     store) -> None:
        """Undo a previous :meth:`apply_delta`, rebinding back to ``store``.

        ``store`` is the store the statistics described *before* the apply
        (usually the base store).  Also correct for pair tables built while
        the delta was applied: their counts describe the perturbed contents,
        and the inverted updates move them to the base contents exactly.
        """
        self.apply_delta(
            {cell: (new_value, old_value) for cell, (old_value, new_value) in changes.items()},
            store,
        )


class TableStatistics:
    """Bundle of marginal + pairwise statistics for one table snapshot.

    Statistics are delta-maintained: when the owning table mutates one cell it
    calls :meth:`apply_cell_update` instead of throwing the whole bundle away,
    so repair loops that interleave statistics lookups with cell writes (the
    Algorithm-1 fixpoint, the greedy repairer) pay O(pairs cached) per write
    instead of an O(rows) rebuild per lookup.
    """

    def __init__(self, store: ColumnStore):
        self._store = store
        self._marginals: dict[str, ColumnStatistics] = {}
        self.cooccurrence = CooccurrenceStatistics(store)

    def apply_cell_update(self, row: int, attribute: str,
                          old_value: Any, new_value: Any) -> None:
        """Delta-maintain all built statistics for one cell changing values."""
        marginal = self._marginals.get(attribute)
        if marginal is not None:
            marginal.apply_update(old_value, new_value)
        self.cooccurrence.apply_cell_update(row, attribute, old_value, new_value)

    def marginal(self, attribute: str) -> ColumnStatistics:
        if attribute not in self._marginals:
            self._marginals[attribute] = ColumnStatistics(self._store, attribute)
        return self._marginals[attribute]

    def fork(self, store: ColumnStore) -> "TableStatistics":
        """An independent copy of everything built so far, bound to ``store``.

        ``store`` must hold the same contents the forked statistics describe;
        divergence is then applied through :meth:`apply_cell_update`.  The
        paired oracle uses this to derive the second instance's statistics
        from the first's (the two differ in one cell) instead of re-scanning
        columns per instance; delta maintenance guarantees the fork equals a
        from-scratch rebuild at every point.
        """
        clone = TableStatistics.__new__(TableStatistics)
        clone._store = store
        clone._marginals = {
            attribute: marginal.fork() for attribute, marginal in self._marginals.items()
        }
        clone.cooccurrence = self.cooccurrence.fork(store)
        return clone

    def apply_delta(self, changes: Mapping[tuple[int, str], tuple[Any, Any]],
                    store) -> None:
        """Move every built statistic onto the contents of ``store``.

        ``changes`` is the sparse cell delta ``{(row, attribute): (old, new)}``
        separating the contents currently described from ``store``'s contents
        — the same shape :meth:`~repro.engine.index.MultiColumnIndex.apply_delta`
        consumes.  Cost is O(|changes| · built structures touching the changed
        attributes) instead of the O(rows) rebuild per structure a fresh
        :class:`TableStatistics` would pay; the result is exactly what a
        from-scratch build over ``store`` would produce (property-tested).
        """
        if changes:
            marginals = self._marginals
            by_attr: dict[str, list[tuple[Any, Any]]] = {}
            for (_row, attribute), update in changes.items():
                if attribute in marginals:
                    by_attr.setdefault(attribute, []).append(update)
            for attribute, updates in by_attr.items():
                marginals[attribute].apply_delta(updates)
        self.cooccurrence.apply_delta(changes, store)
        self._store = store

    def revert_delta(self, changes: Mapping[tuple[int, str], tuple[Any, Any]],
                     store) -> None:
        """Undo a previous :meth:`apply_delta`, rebinding back to ``store``."""
        self.apply_delta(
            {cell: (new_value, old_value) for cell, (old_value, new_value) in changes.items()},
            store,
        )

    def most_common(self, attribute: str, default: Any = None) -> Any:
        return self.marginal(attribute).most_common(default)

    def most_probable_given(
        self, target: str, given: str, given_value: Any, default: Any = None
    ) -> Any:
        return self.cooccurrence.most_probable(target, given, given_value, default)




# -- the shared revertible statistics engine ----------------------------------------


class _LeasedCooccurrenceStatistics(CooccurrenceStatistics):
    """Cooccurrence bundle whose pair tables sync lazily through the engine.

    Every read path funnels through :meth:`_counts_for` (or checks the argmax
    memo first, hence the :meth:`most_probable` override): before serving, the
    requested pair distribution is moved from whatever snapshot it last
    described onto the engine's current owner view.  Pairs the current
    instance never consults are left where they are — that laziness is the
    whole point: a repair pays only for the distributions it actually reads.
    """

    def __init__(self, store, engine: "SharedStatistics"):
        super().__init__(store)
        self._engine = engine
        #: the engine's clean-key set, shared by reference: the O(1) inline
        #: fast path for the per-read sync check on the hottest lookups
        self._clean = engine._clean

    def _counts_for(self, given: str, target: str):
        counts = self._pair_counts.get((given, target))
        if counts is not None and ("p", given, target) in self._clean:
            return counts
        engine = self._engine
        if engine is not None:
            engine._sync_pair(given, target)
        return super()._counts_for(given, target)

    def most_probable(self, target: str, given: str, given_value: Any,
                      default: Any = None) -> Any:
        # the memo consult precedes _counts_for, so sync must happen here too
        if ("p", given, target) not in self._clean:
            engine = self._engine
            if engine is not None:
                engine._sync_pair(given, target)
        return super().most_probable(target, given, given_value, default)

    def fork(self, store) -> CooccurrenceStatistics:
        engine = self._engine
        if engine is not None:
            engine._sync_all()
        return super().fork(store)


class _LeasedTableStatistics(TableStatistics):
    """The engine's single statistics instance.

    Reads route through the engine's per-structure sync; in-place cell writes
    (:meth:`apply_cell_update`, called by
    :meth:`~repro.dataset.table.Table.set_value` on the owner view) are routed
    to the engine so only structures synced to the owner receive them —
    structures parked on older snapshots pick the writes up from the view
    deltas when they are next consulted.
    """

    def __init__(self, store, engine: "SharedStatistics"):
        self._store = store
        self._marginals = {}
        self.cooccurrence = _LeasedCooccurrenceStatistics(store, engine)
        self._engine = engine
        self._clean = engine._clean  # shared by reference (see cooccurrence)

    def marginal(self, attribute: str) -> ColumnStatistics:
        if ("m", attribute) in self._clean:
            marginal = self._marginals.get(attribute)
            if marginal is not None:
                return marginal
        engine = self._engine
        if engine is not None:
            engine._sync_marginal(attribute)
        return super().marginal(attribute)

    def apply_cell_update(self, row: int, attribute: str,
                          old_value: Any, new_value: Any) -> None:
        engine = self._engine
        if engine is None:
            super().apply_cell_update(row, attribute, old_value, new_value)
        else:
            engine._note_write(row, attribute, old_value, new_value)

    def fork(self, store) -> TableStatistics:
        engine = self._engine
        if engine is not None:
            engine._sync_all()
        return super().fork(store)

    def _detach(self) -> None:
        """Sever the engine link (the engine rebuilt after a base mutation).

        A detached instance keeps serving whatever it currently describes
        with plain per-instance behaviour, so stale holders degrade safely.
        """
        self._engine = None
        self.cooccurrence._engine = None


class SharedStatistics:
    """One revertible :class:`TableStatistics` instance shared by every
    perturbation view over one base table.

    The Shapley sampling loop repairs thousands of perturbed instances of the
    same dirty table, and each repair lazily rebuilds marginal and pair
    distributions from scratch (or forks a sibling's copy).  This engine keeps
    a *single* statistics bundle per explainer and **moves** it between
    instances: :meth:`lease` hands the bundle to a view, and each structure
    (one marginal, one pair distribution) is synced on first read by applying
    the sparse cell diff between the snapshot it last described and the
    owner's contents — built on the
    :meth:`~TableStatistics.apply_delta`/:meth:`~TableStatistics.revert_delta`
    protocol, with per-structure positions so unconsulted structures cost
    nothing.  Repair algorithms see the bundle transparently through
    :meth:`~repro.dataset.table.PerturbationView.stats`; in-place writes keep
    synced structures maintained exactly as a per-instance bundle would be.

    Moves are exact — counts after a sync equal a from-scratch rebuild over
    the new contents (property-tested) — which preserves the engine's
    never-changes-results invariant: ``shared_stats=False`` on the
    oracle/explainer forces the per-instance path bit-identically.

    Position bookkeeping records, per structure, the view it describes and
    that view's write-log length.  If a parked view is written afterwards
    (its log grew), the structure can no longer be moved exactly and is
    dropped for a lazy rebuild — the always-correct escape hatch.  The base
    table must not be mutated while the engine is in use; if its mutation
    version moves, the engine rebuilds from scratch, mirroring the
    incremental violation detector.
    """

    __slots__ = ("_base", "_base_store", "_base_version", "_stats", "_owner",
                 "_columns", "_positions", "_clean", "leases", "cells_moved")

    def __init__(self, base_table):
        self._base = base_table
        self._owner = None
        self._stats = None
        #: lifetime count of ownership moves between snapshots
        self.leases = 0
        #: lifetime count of cell updates applied by structure syncs
        self.cells_moved = 0
        self._reset()

    def _reset(self) -> None:
        if self._stats is not None:
            self._stats._detach()
        if self._owner is not None:
            self._owner._stats = None
        self._base_store = self._base.store
        self._base_version = self._base.version
        self._owner = None  # the view the bundle is leased to (None = the base)
        self._columns: dict[str, Any] = {}  # base column arrays, fetched once
        #: per-structure position: ("m", attr) / ("p", given, target) ->
        #: (view-or-None, change-log length at sync time)
        self._positions: dict[tuple, tuple[Any, int]] = {}
        #: structure keys currently synced to the owner at its newest write —
        #: the O(1) fast path for the sync check on every statistics read.
        #: Invariant: a clean key's structure is exactly maintained for the
        #: owner's current contents (writes update it through _note_write);
        #: its _positions entry is refreshed lazily when ownership moves.
        self._clean: set[tuple] = set()
        self._stats = _LeasedTableStatistics(self._base_store, self)

    def _column(self, attribute: str):
        column = self._columns.get(attribute)
        if column is None:
            column = self._columns[attribute] = self._base_store.column(attribute)
        return column

    # -- ownership ---------------------------------------------------------------

    def lease(self, view) -> TableStatistics:
        """Hand the shared bundle to ``view`` and return it.

        ``view`` must be a :class:`~repro.dataset.table.PerturbationView`
        rooted on this engine's base table.  The lease itself is O(1): no
        counts move until a structure is actually read.  The previous owner's
        cached ``stats`` reference is invalidated so it re-leases on next use.
        """
        if self._base.version != self._base_version:
            self._reset()
        owner = self._owner
        if owner is view:
            return self._stats
        self._park_clean_structures()
        stats = self._stats
        stats._store = view.store
        stats.cooccurrence._store = view.store
        if owner is not None:
            owner._stats = None
        self._owner = view
        self.leases += 1
        return stats

    def release(self) -> None:
        """Re-point the shared bundle at the unperturbed base contents.

        Structures stay parked on their current snapshots and move back
        lazily when next read.
        """
        if self._base.version != self._base_version:
            self._reset()
            return
        owner = self._owner
        if owner is None:
            return
        self._park_clean_structures()
        stats = self._stats
        stats._store = self._base_store
        stats.cooccurrence._store = self._base_store
        owner._stats = None
        self._owner = None
        self.leases += 1

    def _park_clean_structures(self) -> None:
        """Record where the clean structures are being left (pre-move hook).

        Clean structures track the owner implicitly; when ownership moves
        their positions must be pinned to the departing owner's snapshot so
        the next sync can diff from it.
        """
        clean = self._clean
        if not clean:
            return
        owner = self._owner
        position = (owner, self._owner_log_length())
        positions = self._positions
        for key in clean:
            positions[key] = position
        clean.clear()

    # -- per-structure sync --------------------------------------------------------

    def _owner_log_length(self) -> int:
        owner = self._owner
        return len(owner.change_log) if owner is not None else 0

    def _attr_changes(self, attribute: str,
                      old_columns: Mapping[str, Mapping[int, Any]],
                      new_columns: Mapping[str, Mapping[int, Any]]) -> dict | None:
        """Per-row ``(old, new)`` diff of one attribute between two snapshots.

        Both snapshots are given by their normalised per-column override dicts
        over the shared base, so a cell differs exactly when its override
        entries differ; values come from the override dicts or the base
        column array, never via per-cell store accessors.  Returns ``None``
        when the diff is at least as large as a from-scratch column rebuild —
        the caller then drops the structure instead of moving it (moving a
        statistic further than ``n_rows`` cells can never beat rebuilding it
        lazily from the already-materialised overlay column).
        """
        old_overrides = old_columns.get(attribute)
        new_overrides = new_columns.get(attribute)
        if not old_overrides and not new_overrides:
            return {}
        if old_overrides and new_overrides:
            try:
                # normalised dicts: a cell moved exactly when its override
                # entry differs — one C-level symmetric difference
                row_ids = {row for row, _ in
                           old_overrides.items() ^ new_overrides.items()}
            except TypeError:  # unhashable cell values
                row_ids = set(old_overrides)
                row_ids.update(new_overrides)
        elif old_overrides:
            row_ids = set(old_overrides)
        else:
            row_ids = set(new_overrides)
        if not row_ids:
            return {}
        if 2 * len(row_ids) >= self._base_store.n_rows:
            return None  # rebuilding is cheaper than moving this far
        column = self._column(attribute)
        rows: dict[int, tuple[Any, Any]] = {}
        for row in row_ids:
            if old_overrides is not None and row in old_overrides:
                old_value = old_overrides[row]
            else:
                old_value = column[row]
            if new_overrides is not None and row in new_overrides:
                new_value = new_overrides[row]
            else:
                new_value = column[row]
            if values_differ(old_value, new_value):
                rows[row] = (old_value, new_value)
        return rows

    def _source_columns(self, position) -> Mapping[str, Mapping[int, Any]] | None:
        """The override dicts of a structure's recorded position.

        Returns ``None`` when the parked snapshot was written after the
        structure left it (its change log grew) — the exact diff is lost and
        the caller must drop the structure for a lazy rebuild.
        """
        source_view, log_length = position
        if source_view is None:
            return {}
        if len(source_view.change_log) != log_length:
            return None
        return source_view.delta_by_column()

    def _sync_marginal(self, attribute: str) -> None:
        key = ("m", attribute)
        if key in self._clean:
            return
        owner = self._owner
        target_length = self._owner_log_length()
        position = self._positions.get(key)
        self._clean.add(key)
        if position is not None and position[0] is owner and position[1] == target_length:
            return
        marginals = self._stats._marginals
        if attribute not in marginals:
            return  # will be built lazily from the owner's store
        if position is None:
            position = (None, 0)
        old_columns = self._source_columns(position)
        if old_columns is not None:
            new_columns = owner.delta_by_column() if owner is not None else {}
            rows = self._attr_changes(attribute, old_columns, new_columns)
        else:
            rows = None  # parked snapshot moved on: rebuild lazily
        if rows is None:
            del marginals[attribute]
            return
        if rows:
            marginals[attribute].apply_delta(rows.values())
            self.cells_moved += len(rows)

    def _drop_pair(self, pair: tuple[str, str]) -> None:
        cooccurrence = self._stats.cooccurrence
        del cooccurrence._pair_counts[pair]
        memo = cooccurrence._argmax_memo
        given, target = pair
        for key in [k for k in memo if k[0] == given and k[1] == target]:
            del memo[key]

    def _sync_pair(self, given: str, target: str) -> None:
        key = ("p", given, target)
        if key in self._clean:
            return
        owner = self._owner
        target_length = self._owner_log_length()
        position = self._positions.get(key)
        self._clean.add(key)
        if position is not None and position[0] is owner and position[1] == target_length:
            return
        cooccurrence = self._stats.cooccurrence
        pair = (given, target)
        if pair not in cooccurrence._pair_counts:
            return  # will be built lazily from the owner's store
        if position is None:
            position = (None, 0)
        old_columns = self._source_columns(position)
        if old_columns is None:
            self._drop_pair(pair)  # parked snapshot moved on: rebuild lazily
            return
        new_columns = owner.delta_by_column() if owner is not None else {}
        changed: dict[str, dict[int, tuple[Any, Any]]] = {}
        moved = 0
        for attribute in {given, target}:
            rows = self._attr_changes(attribute, old_columns, new_columns)
            if rows is None:
                self._drop_pair(pair)  # further than a rebuild: rebuild lazily
                return
            if rows:
                changed[attribute] = rows
                moved += len(rows)
        if not changed:
            return
        column_of = self._column

        def sibling_of(row, attribute):
            overrides = new_columns.get(attribute)
            if overrides is not None and row in overrides:
                return overrides[row]
            return column_of(attribute)[row]

        cooccurrence._move_rows(changed, sibling_of, pairs=[pair])
        self.cells_moved += moved

    def _sync_all(self) -> None:
        """Bring every built structure onto the owner (pre-fork hook)."""
        for attribute in list(self._stats._marginals):
            self._sync_marginal(attribute)
        for given, target in list(self._stats.cooccurrence._pair_counts):
            self._sync_pair(given, target)

    # -- base-table updates ----------------------------------------------------------

    def begin_base_update(self) -> None:
        """Pre-mutation hook of an in-place base-table write.

        Brings every built structure onto the *pre-update* base contents
        while they are still readable: ownership returns to the base and all
        parked structures are synced (or dropped, the lazy escape hatch).
        If the engine was already stale against the base it resets — the
        post-update version check would have done the same, just later.
        """
        if self._base.version != self._base_version:
            self._reset()
            return
        self.release()
        self._sync_all()

    def complete_base_update(self, changes) -> None:
        """Post-mutation hook: move the bundle onto the new base contents.

        ``changes`` maps each written :class:`CellRef` to its ``(old, new)``
        pair.  :meth:`begin_base_update` left every built structure synced to
        the pre-update base, so one :meth:`TableStatistics.apply_delta` pass
        lands them exactly on the new contents; positions and the clean set
        are rebuilt around the new base version, keeping the engine live
        where the version check alone would force a full reset.
        """
        delta = {(cell.row, cell.attribute): values
                 for cell, values in changes.items()}
        if delta:
            self._stats.apply_delta(delta, self._base_store)
            self.cells_moved += len(delta)
        self._base_version = self._base.version
        # every built structure now describes the base's current contents
        self._positions.clear()
        self._clean.clear()
        for attribute in self._stats._marginals:
            self._clean.add(("m", attribute))
        for pair in self._stats.cooccurrence._pair_counts:
            self._clean.add(("p", *pair))

    # -- write routing -------------------------------------------------------------

    def _note_write(self, row: int, attribute: str,
                    old_value: Any, new_value: Any) -> None:
        """One in-place cell write on the owner view.

        Structures synced to the owner receive the update immediately (and
        their recorded log position advances past the write); parked
        structures are left alone — the write is part of the owner's delta
        and reaches them through their next sync diff.
        """
        if self._owner is None:
            return  # a write on a detached/stale holder: nothing to maintain
        stats = self._stats
        for key in self._clean:
            if key[0] == "m":
                if key[1] == attribute:
                    marginal = stats._marginals.get(attribute)
                    if marginal is not None:
                        marginal.apply_update(old_value, new_value)
            elif key[1] == attribute or key[2] == attribute:
                pair = (key[1], key[2])
                counts = stats.cooccurrence._pair_counts.get(pair)
                if counts is not None:
                    stats.cooccurrence._apply_cell_to_pair(
                        pair, counts, row, attribute, old_value, new_value
                    )

    # -- telemetry -----------------------------------------------------------------

    def statistics(self) -> dict[str, int]:
        """Lease counters for the oracle's perf telemetry."""
        return {"stats_leases": self.leases, "stats_cells_moved": self.cells_moved}
