"""Column and co-occurrence statistics.

The repair algorithms in the paper are statistics driven:

* Algorithm 1 repairs a violating ``City`` to ``argmax_c P[City = c]`` and a
  violating ``Country`` to ``argmax_c P[Country = c | City = t[City]]``.
* The HoloClean-style repairer scores candidate values by co-occurrence with
  the other cells of the tuple.
* The sampling-based cell-Shapley estimator (Example 2.5) replaces
  out-of-coalition cells with values drawn from the column distribution.

This module provides those three quantities over a :class:`ColumnStore`:
marginal distributions, conditional (pairwise) distributions and samplers.
Null cells are excluded from every count.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Hashable, Iterable

import numpy as np

from repro.config import make_rng
from repro.engine.storage import ColumnStore, is_null


_UNSET = object()
_NO_WINNER = object()  # memoised "no co-occurrence evidence" marker


class ColumnStatistics:
    """Marginal value distribution of a single column."""

    __slots__ = ("attribute", "_counts", "_total", "_most_common")

    def __init__(self, store: ColumnStore, attribute: str):
        self.attribute = attribute
        counts: Counter = Counter()
        for value in store.column(attribute):
            if not is_null(value):
                counts[value] += 1
        self._counts = counts
        self._total = sum(counts.values())
        self._most_common = _UNSET

    @property
    def total(self) -> int:
        return self._total

    def count(self, value: Any) -> int:
        return self._counts.get(value, 0)

    def frequency(self, value: Any) -> float:
        """P[A = value] over non-null cells (0.0 on an all-null column)."""
        if self._total == 0:
            return 0.0
        return self._counts.get(value, 0) / self._total

    def most_common(self, default: Any = None) -> Any:
        """The modal value, ties broken deterministically by string order.

        Memoised until the next :meth:`apply_update` — repair rules ask for
        the mode once per violating tuple.
        """
        if not self._counts:
            return default
        if self._most_common is _UNSET:
            best_count = max(self._counts.values())
            self._most_common = min(
                (value for value, count in self._counts.items() if count == best_count),
                key=repr,
            )
        return self._most_common

    def domain(self) -> list[Any]:
        """Distinct non-null values, deterministically ordered."""
        return sorted(self._counts, key=repr)

    def sample(self, rng=None, size: int | None = None):
        """Draw value(s) from the empirical column distribution.

        This is exactly the replacement distribution of Example 2.5: "values
        of cells that are not part of the coalition will be replaced with a
        sample value from their column distribution".
        """
        rng = make_rng(rng)
        values = list(self._counts.keys())
        if not values:
            return None if size is None else [None] * size
        weights = np.array([self._counts[v] for v in values], dtype=float)
        weights /= weights.sum()
        if size is None:
            return values[int(rng.choice(len(values), p=weights))]
        picks = rng.choice(len(values), size=size, p=weights)
        return [values[int(i)] for i in picks]

    def apply_update(self, old_value: Any, new_value: Any) -> None:
        """Delta-maintain the counts for one cell changing ``old -> new``.

        Zero-count entries are removed so :meth:`domain`, :meth:`items` and
        :meth:`most_common` see exactly what a from-scratch rebuild would.
        """
        if not is_null(old_value):
            count = self._counts.get(old_value, 0)
            if count:
                if count == 1:
                    del self._counts[old_value]
                else:
                    self._counts[old_value] = count - 1
                self._total -= 1
        if not is_null(new_value):
            self._counts[new_value] += 1
            self._total += 1
        self._most_common = _UNSET

    def fork(self) -> "ColumnStatistics":
        """An independent copy (counts and memo included).

        Forked statistics diverge from the original through
        :meth:`apply_update` — the paired oracle forks the first instance's
        statistics onto the second instead of re-scanning its columns.
        """
        clone = ColumnStatistics.__new__(ColumnStatistics)
        clone.attribute = self.attribute
        clone._counts = Counter(self._counts)
        clone._total = self._total
        clone._most_common = self._most_common
        return clone

    def entropy(self) -> float:
        """Shannon entropy of the column distribution (bits)."""
        if self._total == 0:
            return 0.0
        probabilities = np.array(
            [count / self._total for count in self._counts.values()], dtype=float
        )
        return float(-(probabilities * np.log2(probabilities)).sum())

    def items(self) -> Iterable[tuple[Any, int]]:
        return self._counts.items()


class CooccurrenceStatistics:
    """Pairwise conditional distributions ``P[B = b | A = a]``.

    Built lazily per attribute pair and cached, because the repair algorithms
    only ever condition on a handful of pairs (e.g. Country given City).
    """

    def __init__(self, store: ColumnStore):
        self._store = store
        self._pair_counts: dict[tuple[str, str], dict[Hashable, Counter]] = {}
        #: memo for most_probable, keyed (given, target, given_value);
        #: selectively invalidated by apply_cell_update
        self._argmax_memo: dict[tuple, Any] = {}

    def _counts_for(self, given: str, target: str) -> dict[Hashable, Counter]:
        key = (given, target)
        if key not in self._pair_counts:
            counts: dict[Hashable, Counter] = defaultdict(Counter)
            given_column = self._store.column(given)
            target_column = self._store.column(target)
            for row in range(self._store.n_rows):
                given_value = given_column[row]
                target_value = target_column[row]
                if is_null(given_value) or is_null(target_value):
                    continue
                counts[given_value][target_value] += 1
            self._pair_counts[key] = dict(counts)
        return self._pair_counts[key]

    def conditional_probability(
        self, target: str, target_value: Any, given: str, given_value: Any
    ) -> float:
        """Return ``P[target = target_value | given = given_value]``."""
        counts = self._counts_for(given, target).get(given_value)
        if not counts:
            return 0.0
        total = sum(counts.values())
        return counts.get(target_value, 0) / total

    def most_probable(
        self, target: str, given: str, given_value: Any, default: Any = None
    ) -> Any:
        """``argmax_v P[target = v | given = given_value]``.

        Falls back to ``default`` when the conditioning value never co-occurs
        with a non-null target (e.g. the city is itself an unseen typo).
        Ties are broken deterministically by string order.
        """
        memo_key = (given, target, given_value)
        winner = self._argmax_memo.get(memo_key, _UNSET)
        if winner is _UNSET:
            counts = self._counts_for(given, target).get(given_value)
            if not counts:
                winner = _NO_WINNER
            else:
                best = max(counts.values())
                winner = min(
                    (value for value, count in counts.items() if count == best), key=repr
                )
            self._argmax_memo[memo_key] = winner
        return default if winner is _NO_WINNER else winner

    def cooccurrence_count(
        self, attr_a: str, value_a: Any, attr_b: str, value_b: Any
    ) -> int:
        """Number of rows where both cells carry the given values."""
        counts = self._counts_for(attr_a, attr_b).get(value_a)
        if not counts:
            return 0
        return counts.get(value_b, 0)

    def warm(self, given: str, target: str) -> None:
        """Force the ``(given, target)`` pair distribution to be built now.

        Used before :meth:`fork` so the forked copy carries the pair tables
        the repair rules will need instead of re-scanning per instance.
        """
        self._counts_for(given, target)

    def fork(self, store: ColumnStore) -> "CooccurrenceStatistics":
        """An independent copy reading sibling cells from ``store``.

        Only the pair tables built so far are copied; unbuilt pairs are built
        lazily from ``store`` as usual.
        """
        clone = CooccurrenceStatistics.__new__(CooccurrenceStatistics)
        clone._store = store
        clone._pair_counts = {
            key: {given_value: Counter(counter) for given_value, counter in counts.items()}
            for key, counts in self._pair_counts.items()
        }
        clone._argmax_memo = dict(self._argmax_memo)
        return clone

    # -- delta maintenance -----------------------------------------------------

    @staticmethod
    def _adjust(counts: dict[Hashable, Counter], given_value: Any,
                target_value: Any, delta: int) -> None:
        if is_null(given_value) or is_null(target_value):
            return
        counter = counts.get(given_value)
        if delta > 0:
            if counter is None:
                counter = counts[given_value] = Counter()
            counter[target_value] += delta
            return
        if counter is None:
            return
        counter[target_value] += delta
        if counter[target_value] <= 0:
            del counter[target_value]
        if not counter:
            del counts[given_value]

    def apply_cell_update(self, row: int, attribute: str,
                          old_value: Any, new_value: Any) -> None:
        """Delta-maintain every cached pair distribution touching ``attribute``.

        Must be called *after* the store has been updated: the changed cell's
        old/new values are passed in, all sibling cells are read from the
        (already-current) store.
        """
        memo = self._argmax_memo
        for (given, target), counts in self._pair_counts.items():
            if given == attribute and target == attribute:
                self._adjust(counts, old_value, old_value, -1)
                self._adjust(counts, new_value, new_value, +1)
                memo.pop((given, target, old_value), None)
                memo.pop((given, target, new_value), None)
            elif given == attribute:
                sibling = self._store.value(row, target)
                self._adjust(counts, old_value, sibling, -1)
                self._adjust(counts, new_value, sibling, +1)
                memo.pop((given, target, old_value), None)
                memo.pop((given, target, new_value), None)
            elif target == attribute:
                sibling = self._store.value(row, given)
                self._adjust(counts, sibling, old_value, -1)
                self._adjust(counts, sibling, new_value, +1)
                memo.pop((given, target, sibling), None)


class TableStatistics:
    """Bundle of marginal + pairwise statistics for one table snapshot.

    Statistics are delta-maintained: when the owning table mutates one cell it
    calls :meth:`apply_cell_update` instead of throwing the whole bundle away,
    so repair loops that interleave statistics lookups with cell writes (the
    Algorithm-1 fixpoint, the greedy repairer) pay O(pairs cached) per write
    instead of an O(rows) rebuild per lookup.
    """

    def __init__(self, store: ColumnStore):
        self._store = store
        self._marginals: dict[str, ColumnStatistics] = {}
        self.cooccurrence = CooccurrenceStatistics(store)

    def apply_cell_update(self, row: int, attribute: str,
                          old_value: Any, new_value: Any) -> None:
        """Delta-maintain all built statistics for one cell changing values."""
        marginal = self._marginals.get(attribute)
        if marginal is not None:
            marginal.apply_update(old_value, new_value)
        self.cooccurrence.apply_cell_update(row, attribute, old_value, new_value)

    def marginal(self, attribute: str) -> ColumnStatistics:
        if attribute not in self._marginals:
            self._marginals[attribute] = ColumnStatistics(self._store, attribute)
        return self._marginals[attribute]

    def fork(self, store: ColumnStore) -> "TableStatistics":
        """An independent copy of everything built so far, bound to ``store``.

        ``store`` must hold the same contents the forked statistics describe;
        divergence is then applied through :meth:`apply_cell_update`.  The
        paired oracle uses this to derive the second instance's statistics
        from the first's (the two differ in one cell) instead of re-scanning
        columns per instance; delta maintenance guarantees the fork equals a
        from-scratch rebuild at every point.
        """
        clone = TableStatistics.__new__(TableStatistics)
        clone._store = store
        clone._marginals = {
            attribute: marginal.fork() for attribute, marginal in self._marginals.items()
        }
        clone.cooccurrence = self.cooccurrence.fork(store)
        return clone

    def most_common(self, attribute: str, default: Any = None) -> Any:
        return self.marginal(attribute).most_common(default)

    def most_probable_given(
        self, target: str, given: str, given_value: Any, default: Any = None
    ) -> Any:
        return self.cooccurrence.most_probable(target, given, given_value, default)
