"""Column and co-occurrence statistics.

The repair algorithms in the paper are statistics driven:

* Algorithm 1 repairs a violating ``City`` to ``argmax_c P[City = c]`` and a
  violating ``Country`` to ``argmax_c P[Country = c | City = t[City]]``.
* The HoloClean-style repairer scores candidate values by co-occurrence with
  the other cells of the tuple.
* The sampling-based cell-Shapley estimator (Example 2.5) replaces
  out-of-coalition cells with values drawn from the column distribution.

This module provides those three quantities over a :class:`ColumnStore`:
marginal distributions, conditional (pairwise) distributions and samplers.
Null cells are excluded from every count.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Hashable, Iterable

import numpy as np

from repro.config import make_rng
from repro.engine.storage import ColumnStore, is_null


class ColumnStatistics:
    """Marginal value distribution of a single column."""

    __slots__ = ("attribute", "_counts", "_total")

    def __init__(self, store: ColumnStore, attribute: str):
        self.attribute = attribute
        counts: Counter = Counter()
        for value in store.column(attribute):
            if not is_null(value):
                counts[value] += 1
        self._counts = counts
        self._total = sum(counts.values())

    @property
    def total(self) -> int:
        return self._total

    def count(self, value: Any) -> int:
        return self._counts.get(value, 0)

    def frequency(self, value: Any) -> float:
        """P[A = value] over non-null cells (0.0 on an all-null column)."""
        if self._total == 0:
            return 0.0
        return self._counts.get(value, 0) / self._total

    def most_common(self, default: Any = None) -> Any:
        """The modal value, ties broken deterministically by string order."""
        if not self._counts:
            return default
        best_count = max(self._counts.values())
        candidates = sorted(
            (value for value, count in self._counts.items() if count == best_count),
            key=repr,
        )
        return candidates[0]

    def domain(self) -> list[Any]:
        """Distinct non-null values, deterministically ordered."""
        return sorted(self._counts, key=repr)

    def sample(self, rng=None, size: int | None = None):
        """Draw value(s) from the empirical column distribution.

        This is exactly the replacement distribution of Example 2.5: "values
        of cells that are not part of the coalition will be replaced with a
        sample value from their column distribution".
        """
        rng = make_rng(rng)
        values = list(self._counts.keys())
        if not values:
            return None if size is None else [None] * size
        weights = np.array([self._counts[v] for v in values], dtype=float)
        weights /= weights.sum()
        if size is None:
            return values[int(rng.choice(len(values), p=weights))]
        picks = rng.choice(len(values), size=size, p=weights)
        return [values[int(i)] for i in picks]

    def entropy(self) -> float:
        """Shannon entropy of the column distribution (bits)."""
        if self._total == 0:
            return 0.0
        probabilities = np.array(
            [count / self._total for count in self._counts.values()], dtype=float
        )
        return float(-(probabilities * np.log2(probabilities)).sum())

    def items(self) -> Iterable[tuple[Any, int]]:
        return self._counts.items()


class CooccurrenceStatistics:
    """Pairwise conditional distributions ``P[B = b | A = a]``.

    Built lazily per attribute pair and cached, because the repair algorithms
    only ever condition on a handful of pairs (e.g. Country given City).
    """

    def __init__(self, store: ColumnStore):
        self._store = store
        self._pair_counts: dict[tuple[str, str], dict[Hashable, Counter]] = {}

    def _counts_for(self, given: str, target: str) -> dict[Hashable, Counter]:
        key = (given, target)
        if key not in self._pair_counts:
            counts: dict[Hashable, Counter] = defaultdict(Counter)
            given_column = self._store.column(given)
            target_column = self._store.column(target)
            for row in range(self._store.n_rows):
                given_value = given_column[row]
                target_value = target_column[row]
                if is_null(given_value) or is_null(target_value):
                    continue
                counts[given_value][target_value] += 1
            self._pair_counts[key] = dict(counts)
        return self._pair_counts[key]

    def conditional_probability(
        self, target: str, target_value: Any, given: str, given_value: Any
    ) -> float:
        """Return ``P[target = target_value | given = given_value]``."""
        counts = self._counts_for(given, target).get(given_value)
        if not counts:
            return 0.0
        total = sum(counts.values())
        return counts.get(target_value, 0) / total

    def most_probable(
        self, target: str, given: str, given_value: Any, default: Any = None
    ) -> Any:
        """``argmax_v P[target = v | given = given_value]``.

        Falls back to ``default`` when the conditioning value never co-occurs
        with a non-null target (e.g. the city is itself an unseen typo).
        Ties are broken deterministically by string order.
        """
        counts = self._counts_for(given, target).get(given_value)
        if not counts:
            return default
        best = max(counts.values())
        candidates = sorted(
            (value for value, count in counts.items() if count == best), key=repr
        )
        return candidates[0]

    def cooccurrence_count(
        self, attr_a: str, value_a: Any, attr_b: str, value_b: Any
    ) -> int:
        """Number of rows where both cells carry the given values."""
        counts = self._counts_for(attr_a, attr_b).get(value_a)
        if not counts:
            return 0
        return counts.get(value_b, 0)


class TableStatistics:
    """Bundle of marginal + pairwise statistics for one table snapshot."""

    def __init__(self, store: ColumnStore):
        self._store = store
        self._marginals: dict[str, ColumnStatistics] = {}
        self.cooccurrence = CooccurrenceStatistics(store)

    def marginal(self, attribute: str) -> ColumnStatistics:
        if attribute not in self._marginals:
            self._marginals[attribute] = ColumnStatistics(self._store, attribute)
        return self._marginals[attribute]

    def most_common(self, attribute: str, default: Any = None) -> Any:
        return self.marginal(attribute).most_common(default)

    def most_probable_given(
        self, target: str, given: str, given_value: Any, default: Any = None
    ) -> Any:
        return self.cooccurrence.most_probable(target, given, given_value, default)
