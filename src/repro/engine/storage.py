"""Columnar storage primitives.

The T-REx pipeline repeatedly materialises perturbed copies of the input
table (tens of thousands of copies during cell-Shapley sampling), so the
storage layer is designed around cheap copies: each column is an independent
``numpy`` object array and copies share nothing mutable.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import SchemaError, UnknownAttributeError, UnknownRowError

#: Sentinel used to represent a missing / nulled-out cell.  ``None`` is used
#: (rather than ``numpy.nan``) because columns hold arbitrary Python values.
NULL = None


def is_null(value: Any) -> bool:
    """Return ``True`` if ``value`` represents a missing cell."""
    if value is None:
        return True
    if isinstance(value, float) and np.isnan(value):
        return True
    return False


def values_differ(old: Any, new: Any) -> bool:
    """Null-aware cell inequality: two nulls never differ (``None`` vs ``nan``)."""
    if old is new:
        return False
    return old != new and not (is_null(old) and is_null(new))


def null_mask(column: np.ndarray) -> np.ndarray:
    """Boolean mask of null cells (``None`` / ``NaN``) in one pass.

    Equivalent to ``[is_null(v) for v in column]`` but the two elementwise
    comparisons run as C-level loops: ``column == None`` catches the ``None``
    sentinel and ``column != column`` catches ``NaN`` (the only value that
    compares unequal to itself).  Statistics builds and detector rebuild
    loops use this instead of one Python ``is_null`` call per cell.
    """
    mask = column == None  # noqa: E711 — elementwise on object arrays
    mask |= column != column
    return mask


class Fingerprint:
    """A hashable content snapshot with its hash computed exactly once.

    Fingerprints are dictionary keys in the repair oracle's memoisation cache,
    so the same fingerprint object is hashed on every lookup; caching the hash
    turns each lookup into an O(1) integer comparison (falling back to a full
    data comparison only on hash collision).
    """

    __slots__ = ("data", "_hash")

    def __init__(self, data: tuple):
        self.data = data
        self._hash = hash(data)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Fingerprint):
            return self._hash == other._hash and self.data == other.data
        return NotImplemented

    def __getstate__(self) -> tuple:
        # the cached hash is process-local (string hashing is randomised per
        # interpreter), so only the data crosses a pickle boundary; without
        # this, fingerprints shipped back from a spawn-started worker would
        # never compare equal to parent-built ones and merged oracle caches
        # would silently stop matching
        return self.data

    def __setstate__(self, data: tuple) -> None:
        self.data = data
        self._hash = hash(data)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Fingerprint(hash={self._hash})"


class ColumnStore:
    """A minimal columnar store: ordered named columns of equal length.

    The store is intentionally dumb — no types beyond "Python object", no
    persistence — because the repair and explanation layers only need cell
    addressing, column scans and cheap whole-table copies.
    """

    __slots__ = ("_columns", "_names", "_n_rows", "_fingerprint", "_encoding",
                 "_null_masks")

    def __init__(self, columns: Mapping[str, Sequence[Any]]):
        if not columns:
            raise SchemaError("a ColumnStore needs at least one column")
        self._names: tuple[str, ...] = tuple(columns.keys())
        lengths = {name: len(values) for name, values in columns.items()}
        unique_lengths = set(lengths.values())
        if len(unique_lengths) > 1:
            raise SchemaError(f"columns have inconsistent lengths: {lengths}")
        self._n_rows = unique_lengths.pop() if unique_lengths else 0
        self._columns: dict[str, np.ndarray] = {
            name: np.array(list(values), dtype=object) for name, values in columns.items()
        }
        self._fingerprint: Fingerprint | None = None
        self._encoding = None
        self._null_masks: dict[str, np.ndarray] = {}

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_rows(cls, names: Sequence[str], rows: Iterable[Sequence[Any]]) -> "ColumnStore":
        """Build a store from row tuples (each row ordered like ``names``)."""
        rows = [tuple(row) for row in rows]
        for row in rows:
            if len(row) != len(names):
                raise SchemaError(
                    f"row {row!r} has {len(row)} values but schema has {len(names)} attributes"
                )
        columns = {name: [row[i] for row in rows] for i, name in enumerate(names)}
        if not rows:
            columns = {name: [] for name in names}
        return cls(columns)

    # -- basic introspection ---------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        return self._names

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        return len(self._names)

    def __len__(self) -> int:
        return self._n_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    # -- access ---------------------------------------------------------------

    def _check_column(self, name: str) -> None:
        if name not in self._columns:
            raise UnknownAttributeError(name, self._names)

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self._n_rows:
            raise UnknownRowError(row, self._n_rows)

    def column(self, name: str) -> np.ndarray:
        """Return the column as a read-only numpy object array view."""
        self._check_column(name)
        view = self._columns[name].view()
        view.flags.writeable = False
        return view

    def value(self, row: int, name: str) -> Any:
        self._check_column(name)
        self._check_row(row)
        return self._columns[name][row]

    def row(self, row: int) -> tuple[Any, ...]:
        self._check_row(row)
        return tuple(self._columns[name][row] for name in self._names)

    def iter_rows(self) -> Iterator[tuple[Any, ...]]:
        for i in range(self._n_rows):
            yield self.row(i)

    # -- mutation --------------------------------------------------------------

    def set_value(self, row: int, name: str, value: Any) -> None:
        self._check_column(name)
        self._check_row(row)
        self._columns[name][row] = value
        self._fingerprint = None
        # every derived per-column cache must drop with the content it
        # describes: a stale fingerprint would alias two different table
        # states under one oracle-cache key, and a stale null mask would
        # mis-classify the touched cell in statistics and detector scans
        self._null_masks.pop(name, None)
        if self._encoding is not None:
            self._encoding.invalidate(name)

    def copy(self) -> "ColumnStore":
        """Return a deep-enough copy (fresh arrays, shared immutable values)."""
        clone = ColumnStore.__new__(ColumnStore)
        clone._names = self._names
        clone._n_rows = self._n_rows
        clone._columns = {name: col.copy() for name, col in self._columns.items()}
        clone._fingerprint = self._fingerprint  # same content, same fingerprint
        clone._encoding = None  # copies diverge; each lazily builds its own
        clone._null_masks = dict(self._null_masks)  # masks are frozen arrays
        return clone

    def null_mask(self, name: str) -> np.ndarray:
        """Cached boolean null mask for one column.

        Built lazily with the module-level :func:`null_mask` scan and kept
        (read-only) until the next :meth:`set_value` on the column, so
        statistics builds and detector rebuilds that consult the same
        column repeatedly pay for the two elementwise passes once.
        """
        self._check_column(name)
        mask = self._null_masks.get(name)
        if mask is None:
            mask = null_mask(self._columns[name])
            mask.flags.writeable = False
            self._null_masks[name] = mask
        return mask

    # -- dictionary encoding ----------------------------------------------------

    def encoding(self):
        """The store's :class:`~repro.engine.encoding.TableEncoding` (lazy).

        Built on first use and kept for the store's lifetime — dictionaries
        are append-only so overlay deltas never invalidate existing codes,
        and the bundle pickles with the store (a job spec ships it once).
        """
        if self._encoding is None:
            from repro.engine.encoding import TableEncoding

            self._encoding = TableEncoding()
        return self._encoding

    def encoded_column(self, name: str):
        """``int32`` code array for one column (``None`` if unencodable)."""
        self._check_column(name)
        return self.encoding().codes(self, name)

    # -- comparison / hashing helpers -------------------------------------------

    def fingerprint(self) -> Fingerprint:
        """A hashable snapshot of the whole store, used for oracle memoisation.

        The fingerprint is computed lazily and cached until the next mutation,
        so repeated oracle queries against the same snapshot pay for the full
        column walk only once.
        """
        if self._fingerprint is None:
            self._fingerprint = Fingerprint(
                tuple((name, tuple(self._columns[name].tolist())) for name in self._names)
            )
        return self._fingerprint

    def equals(self, other) -> bool:
        """Content equality with any store exposing the read interface
        (:class:`ColumnStore` or :class:`~repro.engine.view.OverlayStore`)."""
        return stores_equal(self, other)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ColumnStore({self.n_rows} rows x {self.n_columns} columns)"


def stores_equal(left, right) -> bool:
    """Column-by-column content equality between any two stores exposing the
    read interface (``column_names``/``n_rows``/``column``)."""
    names = tuple(left.column_names)
    if names != tuple(right.column_names) or left.n_rows != right.n_rows:
        return False
    return all(list(left.column(name)) == list(right.column(name)) for name in names)
