"""Tiny predicate-evaluation layer over :class:`ColumnStore`.

Denial-constraint checking needs two primitives:

* ``select_rows`` — single-table selection with a row predicate, and
* ``pairs_matching`` — enumerate ordered row pairs that agree on a set of
  equality attributes (hash partitioned), optionally filtered by an arbitrary
  pair predicate.

Both treat nulls as non-matching, mirroring SQL three-valued logic for the
comparisons the repair algorithms rely on.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.engine.index import MultiColumnIndex
from repro.engine.storage import ColumnStore, is_null

RowPredicate = Callable[[int], bool]
PairPredicate = Callable[[int, int], bool]


def select_rows(store: ColumnStore, predicate: RowPredicate) -> list[int]:
    """Return the ids of rows satisfying ``predicate`` (called with a row id)."""
    return [row for row in range(store.n_rows) if predicate(row)]


def rows_with_value(store: ColumnStore, attribute: str, value: Any) -> list[int]:
    """Rows whose ``attribute`` equals ``value`` (nulls never match)."""
    if is_null(value):
        return []
    column = store.column(attribute)
    return [row for row in range(store.n_rows) if column[row] == value]


def pairs_matching(
    store: ColumnStore,
    equality_attributes: Sequence[str],
    pair_predicate: PairPredicate | None = None,
    ordered: bool = True,
) -> Iterator[tuple[int, int]]:
    """Enumerate row pairs that agree on every attribute in ``equality_attributes``.

    Parameters
    ----------
    store:
        The table to scan.
    equality_attributes:
        Attributes on which both rows must carry equal, non-null values.  When
        empty, all distinct row pairs are enumerated (quadratic fallback used
        by purely order-based constraints).
    pair_predicate:
        Optional extra filter evaluated on each candidate ``(row1, row2)``.
    ordered:
        If ``True`` yield both ``(i, j)`` and ``(j, i)`` (denial constraints
        quantify over ordered tuple pairs); otherwise each unordered pair is
        yielded once with ``i < j``.
    """
    if equality_attributes:
        index = MultiColumnIndex(store, equality_attributes)
        candidate_groups: Iterable[list[int]] = (rows for _, rows in index.groups())
    else:
        candidate_groups = [list(range(store.n_rows))]

    for rows in candidate_groups:
        for position, row_i in enumerate(rows):
            for row_j in rows[position + 1 :]:
                if pair_predicate is None or pair_predicate(row_i, row_j):
                    yield (row_i, row_j)
                    if ordered:
                        # the reversed pair may satisfy an asymmetric predicate
                        # (e.g. order comparisons), so re-check it explicitly
                        if pair_predicate is None or pair_predicate(row_j, row_i):
                            yield (row_j, row_i)
                elif ordered and pair_predicate is not None and pair_predicate(row_j, row_i):
                    yield (row_j, row_i)


def count_distinct(store: ColumnStore, attribute: str) -> int:
    """Number of distinct non-null values in a column."""
    return len({value for value in store.column(attribute) if not is_null(value)})
