"""In-memory columnar table engine.

This subpackage replaces the PostgreSQL backend used by the original T-REx
demo (see DESIGN.md, system S1).  It provides:

* :class:`~repro.engine.storage.ColumnStore` — a columnar store over object
  arrays with copy-on-write semantics,
* :class:`~repro.engine.index.HashIndex` — value → row-id hash indexes used
  by the violation detector for equality predicates,
* :mod:`~repro.engine.stats` — per-column and pairwise co-occurrence
  statistics (the ``P[Country = c | City = v]`` style quantities used by the
  paper's Algorithm 1 and by the HoloClean-style repairer), and
* :mod:`~repro.engine.query` — a tiny predicate-evaluation layer (select /
  pair-scan) shared by repair algorithms.
"""

from repro.engine.storage import ColumnStore
from repro.engine.index import HashIndex
from repro.engine.stats import (
    ColumnStatistics,
    CooccurrenceStatistics,
    SharedStatistics,
    TableStatistics,
)
from repro.engine.query import select_rows, pairs_matching

__all__ = [
    "ColumnStore",
    "HashIndex",
    "ColumnStatistics",
    "CooccurrenceStatistics",
    "SharedStatistics",
    "TableStatistics",
    "select_rows",
    "pairs_matching",
]
