"""The cell-addressable table model.

This module defines the three objects the rest of the library is written in
terms of:

* :class:`CellRef` — the address ``t_i[A]`` of a single cell,
* :class:`Table` — an immutable-by-convention table ``T`` with schema
  ``(A_1, ..., A_m)`` supporting cheap perturbed copies (cells nulled out or
  replaced), which is exactly what the black-box Shapley queries need, and
* :class:`RepairDelta` — the set of cell changes between a dirty table
  ``T^d`` and its repair ``T^c``.
"""

from __future__ import annotations

import re

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, NamedTuple, Sequence

from repro.dataset.schema import AttributeSpec, Schema
from repro.engine.stats import TableStatistics
from repro.engine.storage import NULL, ColumnStore, Fingerprint, is_null, values_differ
from repro.engine.view import OverlayStore
from repro.errors import SchemaError, UnknownAttributeError, UnknownRowError

#: The paper's cell notation: ``t<row>[<attribute>]`` with a non-empty
#: attribute and nothing before or after.
_CELL_REF_PATTERN = re.compile(r"t(\d+)\[([^\[\]]+)\]\Z")

#: sentinel for "no delta entry — the cell carries the base value"
_BASE = object()


class CellRef(NamedTuple):
    """Address of one table cell, ``t_row[attribute]`` in the paper's notation."""

    row: int
    attribute: str

    def __str__(self) -> str:
        return f"t{self.row + 1}[{self.attribute}]"

    @classmethod
    def parse(cls, text: str) -> "CellRef":
        """Parse the paper's ``t5[Country]`` notation (1-based row index)."""
        text = text.strip()
        match = _CELL_REF_PATTERN.fullmatch(text)
        if match is None:
            if re.fullmatch(r"t\d+\[\]", text):
                raise SchemaError(
                    f"cell reference {text!r} has an empty attribute name"
                )
            if re.match(r"t\d+\[[^\[\]]+\]", text):
                raise SchemaError(
                    f"cell reference {text!r} has trailing characters after ']'"
                )
            raise SchemaError(
                f"cannot parse cell reference {text!r}: expected 't<row>[<attribute>]'"
            )
        row = int(match.group(1)) - 1
        if row < 0:
            raise SchemaError(f"cell reference {text!r} has a non-positive row index")
        return cls(row=row, attribute=match.group(2))


@dataclass(frozen=True)
class CellChange:
    """One repaired cell: its address, original value and repaired value."""

    cell: CellRef
    old_value: Any
    new_value: Any

    def __str__(self) -> str:
        return f"{self.cell}: {self.old_value!r} -> {self.new_value!r}"


class RepairDelta:
    """The difference between a dirty table and a repaired table."""

    def __init__(self, changes: Iterable[CellChange]):
        self._changes: dict[CellRef, CellChange] = {
            change.cell: change for change in changes
        }

    def __len__(self) -> int:
        return len(self._changes)

    def __bool__(self) -> bool:
        return bool(self._changes)

    def __contains__(self, cell: CellRef) -> bool:
        return cell in self._changes

    def __iter__(self) -> Iterator[CellChange]:
        return iter(sorted(self._changes.values(), key=lambda c: (c.cell.row, c.cell.attribute)))

    def cells(self) -> list[CellRef]:
        """Addresses of all repaired cells (row-major order)."""
        return [change.cell for change in self]

    def change_for(self, cell: CellRef) -> CellChange | None:
        return self._changes.get(cell)

    def new_value(self, cell: CellRef) -> Any:
        change = self._changes.get(cell)
        return change.new_value if change is not None else None

    def to_dict(self) -> dict[CellRef, tuple[Any, Any]]:
        return {
            cell: (change.old_value, change.new_value)
            for cell, change in self._changes.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RepairDelta({len(self)} cells changed)"


class Table:
    """A relational table ``T`` with schema ``(A_1, ..., A_m)``.

    The table is mutable through :meth:`set_value`, but every transformation
    used by the explanation pipeline (:meth:`with_values`, :meth:`with_cells_nulled`,
    :meth:`copy`) returns a new instance, so shared tables are never modified
    behind a caller's back.
    """

    def __init__(self, schema: Schema | Sequence[str], rows: Iterable[Sequence[Any]], name: str = "T"):
        if not isinstance(schema, Schema):
            schema = Schema([AttributeSpec(str(a)) for a in schema])
        self.schema = schema
        self.name = name
        self._store = ColumnStore.from_rows(schema.attribute_names, rows)
        self._stats: TableStatistics | None = None
        self._version = 0

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_columns(cls, columns: Mapping[str, Sequence[Any]], name: str = "T") -> "Table":
        schema = Schema(list(columns.keys()))
        rows = zip(*columns.values()) if columns else []
        return cls(schema, rows, name=name)

    @classmethod
    def _from_store(cls, schema: Schema, store: ColumnStore, name: str) -> "Table":
        table = Table.__new__(Table)
        table.schema = schema
        table.name = name
        table._store = store
        table._stats = None
        table._version = 0
        return table

    # -- shape -----------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self._store.n_rows

    @property
    def n_columns(self) -> int:
        return self._store.n_columns

    @property
    def n_cells(self) -> int:
        return self.n_rows * self.n_columns

    @property
    def attributes(self) -> tuple[str, ...]:
        return self.schema.attribute_names

    def __len__(self) -> int:
        return self.n_rows

    # -- access ----------------------------------------------------------------

    def value(self, row: int, attribute: str) -> Any:
        return self._store.value(row, attribute)

    def __getitem__(self, cell: CellRef) -> Any:
        return self._store.value(cell.row, cell.attribute)

    def row(self, row: int) -> dict[str, Any]:
        """The row as an attribute → value mapping."""
        values = self._store.row(row)
        return dict(zip(self.attributes, values))

    def row_tuple(self, row: int) -> tuple[Any, ...]:
        return self._store.row(row)

    def column(self, attribute: str):
        return self._store.column(attribute)

    def cells(self) -> Iterator[CellRef]:
        """Iterate over all cell addresses in row-major (vectorised) order.

        The order matches Example 2.5's vectorisation
        ``x_T = (t1[A_1], t1[A_2], ..., t2[A_1], ..., t_n[A_m])``.
        """
        for row in range(self.n_rows):
            for attribute in self.attributes:
                yield CellRef(row, attribute)

    def cell_values(self) -> dict[CellRef, Any]:
        return {cell: self[cell] for cell in self.cells()}

    def is_null(self, cell: CellRef) -> bool:
        return is_null(self[cell])

    # -- mutation / transformation ----------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumped by every :meth:`set_value`.

        Snapshot-derived caches (the incremental violation detector, for one)
        record the version they were built against and rebuild when it moves.
        """
        return self._version

    def set_value(self, row: int, attribute: str, value: Any) -> None:
        """In-place cell update (delta-maintains cached statistics)."""
        old_value = self._store.value(row, attribute)
        self._store.set_value(row, attribute, value)
        self._version += 1
        if self._stats is not None:
            self._stats.apply_cell_update(row, attribute, old_value, value)

    def copy(self, name: str | None = None) -> "Table":
        return Table._from_store(self.schema, self._store.copy(), name or self.name)

    def mutable_snapshot(self, name: str | None = None) -> "Table":
        """An independent snapshot that is cheap to mutate.

        For a plain table this is a full :meth:`copy`; a
        :class:`PerturbationView` overrides it to fork only its sparse delta,
        which is what lets the repair algorithms scribble on perturbed
        instances without ever materialising them.
        """
        return self.copy(name=name)

    def with_values(self, assignments: Mapping[CellRef, Any], name: str | None = None) -> "Table":
        """A copy of the table with the given cells replaced."""
        clone = self.copy(name=name)
        for cell, value in assignments.items():
            clone.set_value(cell.row, cell.attribute, value)
        return clone

    def perturbed(self, assignments: Mapping[CellRef, Any], name: str | None = None,
                  trusted: bool = False, prenormalized: bool = False) -> "PerturbationView":
        """A copy-on-write view with the given cells replaced (no column copies).

        The view satisfies the full ``Table`` read interface; building it costs
        O(|assignments|) instead of O(cells).  ``trusted=True`` skips per-cell
        address validation (internal hot-path callers whose cells are known
        valid); ``prenormalized=True`` additionally adopts ``assignments`` as
        the view's delta verbatim — the caller guarantees it is already
        normalised (no entry equal to its base cell) and never mutated again.
        This is the entry point of the incremental evaluation engine — see
        :class:`PerturbationView`.
        """
        return PerturbationView(self, assignments, name=name, trusted=trusted,
                                prenormalized=prenormalized)

    def with_cells_nulled(self, cells: Iterable[CellRef], name: str | None = None) -> "Table":
        """A copy with the given cells set to null.

        This realises the paper's coalition semantics for cell Shapley values:
        ``S ⊆ T^d`` means every cell outside ``S`` is null.
        """
        return self.with_values({cell: NULL for cell in cells}, name=name)

    def restricted_to_coalition(self, coalition: Iterable[CellRef]) -> "Table":
        """A copy where every cell *not* in ``coalition`` is nulled out."""
        keep = set(coalition)
        to_null = [cell for cell in self.cells() if cell not in keep]
        return self.with_cells_nulled(to_null)

    # -- statistics --------------------------------------------------------------

    @property
    def stats(self) -> TableStatistics:
        """Column/co-occurrence statistics of the current snapshot (cached)."""
        if self._stats is None:
            self._stats = TableStatistics(self._store)
        return self._stats

    def adopt_statistics(self, stats: TableStatistics) -> None:
        """Install externally derived statistics for this snapshot.

        ``stats`` must describe exactly this table's current contents — e.g. a
        :meth:`~repro.engine.stats.TableStatistics.fork` of a sibling
        instance's statistics with the differing cells applied, which is how
        the paired oracle avoids re-scanning columns for the second instance
        of a pair.  Subsequent :meth:`set_value` calls keep them maintained.
        """
        self._stats = stats

    @property
    def store(self) -> ColumnStore:
        return self._store

    # -- pickling -----------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle contents only, never runtime caches.

        The incremental detector cached on a snapshot
        (``_incremental_detector``) holds compiled predicate closures that
        cannot cross a pickle boundary, and the statistics bundle /
        shared-statistics engine are content-derived and rebuilt lazily —
        shipping them would only bloat the sharded scheduler's job payloads.
        A worker that unpickles a table gets a clean snapshot and re-derives
        its own caches.
        """
        state = dict(self.__dict__)
        state.pop("_incremental_detector", None)
        state["_stats"] = None
        if "_stats_engine" in state:
            state["_stats_engine"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # -- comparison ---------------------------------------------------------------

    def equals(self, other: "Table") -> bool:
        return self.schema == other.schema and self._store.equals(other._store)

    def diff(self, other: "Table") -> RepairDelta:
        """Cells whose value differs between ``self`` (dirty) and ``other`` (clean)."""
        if self.schema != other.schema or self.n_rows != other.n_rows:
            raise SchemaError("cannot diff tables with different shapes or schemas")
        changes = []
        for cell in self.cells():
            old_value = self[cell]
            new_value = other[cell]
            if old_value != new_value and not (is_null(old_value) and is_null(new_value)):
                changes.append(CellChange(cell, old_value, new_value))
        return RepairDelta(changes)

    def fingerprint(self) -> Fingerprint:
        """Hashable snapshot used to memoise black-box repair calls.

        Cached until the next mutation; for a :class:`PerturbationView` the
        fingerprint is derived from the base's cached fingerprint plus the
        sparse delta, so perturbed instances hash in O(|delta|).
        """
        return self._store.fingerprint()

    # -- validation / rendering ----------------------------------------------------

    def validate_cell(self, cell: CellRef) -> CellRef:
        """Raise if ``cell`` does not address a cell of this table."""
        if cell.attribute not in self.schema:
            raise UnknownAttributeError(cell.attribute, self.attributes)
        if not 0 <= cell.row < self.n_rows:
            raise UnknownRowError(cell.row, self.n_rows)
        return cell

    def to_records(self) -> list[dict[str, Any]]:
        return [self.row(i) for i in range(self.n_rows)]

    def to_text(self, highlight: Iterable[CellRef] = ()) -> str:
        """Render a fixed-width textual view (used by reports and examples).

        Cells listed in ``highlight`` are wrapped in ``*stars*`` — the textual
        stand-in for the coloured highlighting of the original web GUI.
        """
        highlight = set(highlight)
        header = ["#", *self.attributes]
        body: list[list[str]] = []
        for row in range(self.n_rows):
            rendered = [f"t{row + 1}"]
            for attribute in self.attributes:
                value = self.value(row, attribute)
                text = "" if is_null(value) else str(value)
                if CellRef(row, attribute) in highlight:
                    text = f"*{text}*"
                rendered.append(text)
            body.append(rendered)
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            "  ".join(header[i].ljust(widths[i]) for i in range(len(header))),
            "  ".join("-" * widths[i] for i in range(len(header))),
        ]
        for rendered in body:
            lines.append("  ".join(rendered[i].ljust(widths[i]) for i in range(len(header))))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Table({self.name!r}, {self.n_rows} rows x {self.n_columns} columns)"


class PerturbationView(Table):
    """A copy-on-write perturbation of a base table.

    The view layers a sparse ``{CellRef: value}`` delta over the base table's
    column store (:class:`~repro.engine.view.OverlayStore`) and satisfies the
    complete ``Table`` read interface — ``value``/``row``/``column``/``stats``/
    ``fingerprint``/``diff`` all see the perturbed contents — without copying
    a single column.  This is what the Shapley sampling loop builds per
    coalition instead of materialised table copies.

    Properties of the delta:

    * **normalised** — entries whose value equals the base cell (null-aware)
      are dropped, so equal contents always carry equal deltas and equal
      :meth:`~Table.fingerprint` keys;
    * **rooted** — building a view over another view re-roots onto the
      underlying plain table and merges the deltas, so ``view.base`` is always
      a plain :class:`Table` (the invariant the incremental violation detector
      keys its caches on);
    * **composable** — :meth:`with_values` (and therefore
      :meth:`~Table.with_cells_nulled`) returns a sibling view over the same
      base with a merged delta, and :meth:`mutable_snapshot` forks the delta so
      repair algorithms can scribble on an instance in O(|delta|).

    The base table must not be mutated while views over it are alive.
    """

    def __init__(self, base: Table, assignments: Mapping[CellRef, Any] = (),
                 name: str | None = None, trusted: bool = False,
                 prenormalized: bool = False):
        if isinstance(base, PerturbationView):
            root = base._base
            delta: dict[CellRef, Any] = dict(base._delta)
            prenormalized = False  # merging into an existing delta needs the loop
        else:
            root = base
            delta = {}
        self._base = root
        self.schema = root.schema
        self.name = name or root.name
        items = assignments.items() if isinstance(assignments, Mapping) else assignments
        inherited = base._store._encoded_cache if isinstance(base, PerturbationView) else None
        if inherited:
            items = list(items)  # the merge loop and the cache carry-over both read it
        root_value = root.value
        if prenormalized:
            # the caller built an already-normalised delta (e.g. the coalition
            # sampler's precomputed null/mode overlay); adopt it verbatim
            delta = dict(assignments)
        elif trusted:
            # fast path for internal callers whose cell addresses are known
            # valid (e.g. the coalition sampler, which enumerates table.cells())
            for cell, value in items:
                if values_differ(root_value(cell[0], cell[1]), value):
                    delta[cell] = value
                else:
                    delta.pop(cell, None)
        else:
            for cell, value in items:
                if not isinstance(cell, CellRef):
                    cell = CellRef(*cell)
                root.validate_cell(cell)
                if values_differ(root_value(cell.row, cell.attribute), value):
                    delta[cell] = value
                else:
                    delta.pop(cell, None)
        self._delta = delta
        # the overlay shares (does not copy) the delta dict, so in-place
        # set_value calls routed through Table.set_value stay visible here
        self._store = OverlayStore(root.store, delta)
        if inherited:
            # columns untouched by the merge keep the base view's encoded
            # delta arrays: their per-column override dicts are identical and
            # the dictionaries are append-only, so the codes stay valid
            touched = {cell[1] for cell, _ in items}
            cache = self._store._encoded_cache
            for column, entry in inherited.items():
                if column not in touched:
                    cache[column] = entry
        self._stats = None
        #: shared-statistics engine inherited along the view lineage (the
        #: oracle/sampler install it on the root views they build); see
        #: :attr:`stats`
        self._stats_engine = base._stats_engine if isinstance(base, PerturbationView) else None
        self._version = 0

    # -- view-specific introspection --------------------------------------------

    @property
    def base(self) -> Table:
        """The plain table this view perturbs (never another view)."""
        return self._base

    @property
    def delta(self) -> dict[CellRef, Any]:
        """The normalised sparse delta as a ``{CellRef: value}`` mapping."""
        return {CellRef(row, attribute): value
                for (row, attribute), value in self._delta.items()}

    def delta_by_column(self) -> dict[str, dict[int, Any]]:
        """The delta grouped per column, ``{attribute: {row: value}}`` (read-only).

        Cheaper than :attr:`delta` on the hot path: the grouping is cached by
        the overlay store and no :class:`CellRef` objects are built.
        """
        return self._store.delta_by_column()

    @property
    def change_log(self) -> list:
        """Append-only ``(row, attribute)`` log of every write to this view.

        Second-order violation maintenance
        (:class:`~repro.constraints.incremental.RepairWalk`) reads it to
        derive view→view deltas between a repair loop's passes.
        """
        return self._store.change_log

    def differing_cells(self, other: "PerturbationView") -> list[CellRef]:
        """Cells whose effective content differs between two sibling views.

        Both views must share the same base table.  Because both deltas are
        normalised over that base, a cell differs exactly when its delta
        *entry* differs (present in one view only, or present in both with
        different values) — one C-level symmetric difference over the delta
        items.  This is how the paired oracle derives the one-cell sub-delta
        separating a with/without instance pair without trusting the caller.
        """
        if not isinstance(other, PerturbationView) or other._base is not self._base:
            raise SchemaError(
                "differing_cells requires two views over the same base table"
            )
        try:
            changed = {cell for cell, _ in self._delta.items() ^ other._delta.items()}
        except TypeError:
            # unhashable cell values: fall back to a per-cell comparison
            changed = set()
            for cell in self._delta.keys() | other._delta.keys():
                mine = self._delta.get(cell, _BASE)
                theirs = other._delta.get(cell, _BASE)
                if mine is _BASE or theirs is _BASE or values_differ(mine, theirs):
                    changed.add(cell)
        cells = [cell if isinstance(cell, CellRef) else CellRef(*cell) for cell in changed]
        cells.sort(key=lambda cell: (cell.row, cell.attribute))
        return cells

    # -- statistics ---------------------------------------------------------------

    @property
    def stats(self) -> TableStatistics:
        """Statistics of the view's contents.

        When a :class:`~repro.engine.stats.SharedStatistics` engine travels
        with the view (installed by the oracle/sampler on the hot path and
        inherited through :meth:`mutable_snapshot`/:meth:`with_values`), the
        engine's single revertible instance is *leased*: moved onto this
        view's contents by its sparse delta instead of rebuilt from scratch.
        Without an engine a per-view bundle is built lazily, exactly as for a
        plain table.  Values are identical either way.
        """
        if self._stats is None:
            engine = self._stats_engine
            if engine is not None:
                self._stats = engine.lease(self)
            else:
                self._stats = TableStatistics(self._store)
        return self._stats

    # -- overridden transformations ---------------------------------------------

    def with_values(self, assignments: Mapping[CellRef, Any], name: str | None = None) -> "PerturbationView":
        """A sibling view over the same base with the assignments merged in."""
        return PerturbationView(self, assignments, name=name or self.name)

    def mutable_snapshot(self, name: str | None = None) -> "PerturbationView":
        """Fork the delta (O(|delta|)) instead of copying columns (O(cells))."""
        return PerturbationView(self, {}, name=name or self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PerturbationView({self.name!r}, {self.n_rows} rows x "
            f"{self.n_columns} columns, {len(self._delta)} perturbed cells)"
        )
