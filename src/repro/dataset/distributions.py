"""Value pools and samplers used by the synthetic dataset generators.

The original demo uses a soccer-standings table scraped from Wikipedia.  That
scrape is not distributed with the paper, so the generators in
:mod:`repro.dataset.generators` rebuild tables with the same schema and the
same kind of attribute correlations (team → city → country, league → country)
from the curated value pools below.  The pools are small and public-knowledge
facts; what matters for the experiments is the *correlation structure*, not
the specific strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.config import make_rng

#: (team, city, country, league) facts used to generate consistent soccer rows.
SOCCER_TEAMS: tuple[tuple[str, str, str, str], ...] = (
    ("Real Madrid", "Madrid", "Spain", "La Liga"),
    ("FC Barcelona", "Barcelona", "Spain", "La Liga"),
    ("Atletico Madrid", "Madrid", "Spain", "La Liga"),
    ("Sevilla FC", "Seville", "Spain", "La Liga"),
    ("Valencia CF", "Valencia", "Spain", "La Liga"),
    ("Athletic Bilbao", "Bilbao", "Spain", "La Liga"),
    ("Villarreal CF", "Villarreal", "Spain", "La Liga"),
    ("Real Sociedad", "San Sebastian", "Spain", "La Liga"),
    ("Liverpool", "Liverpool", "England", "Premier League"),
    ("Manchester City", "Manchester", "England", "Premier League"),
    ("Manchester United", "Manchester", "England", "Premier League"),
    ("Chelsea", "London", "England", "Premier League"),
    ("Arsenal", "London", "England", "Premier League"),
    ("Tottenham Hotspur", "London", "England", "Premier League"),
    ("Everton", "Liverpool", "England", "Premier League"),
    ("Leicester City", "Leicester", "England", "Premier League"),
    ("Juventus", "Turin", "Italy", "Serie A"),
    ("Inter Milan", "Milan", "Italy", "Serie A"),
    ("AC Milan", "Milan", "Italy", "Serie A"),
    ("AS Roma", "Rome", "Italy", "Serie A"),
    ("Lazio", "Rome", "Italy", "Serie A"),
    ("Napoli", "Naples", "Italy", "Serie A"),
    ("Bayern Munich", "Munich", "Germany", "Bundesliga"),
    ("Borussia Dortmund", "Dortmund", "Germany", "Bundesliga"),
    ("RB Leipzig", "Leipzig", "Germany", "Bundesliga"),
    ("Bayer Leverkusen", "Leverkusen", "Germany", "Bundesliga"),
    ("Paris Saint-Germain", "Paris", "France", "Ligue 1"),
    ("Olympique Lyonnais", "Lyon", "France", "Ligue 1"),
    ("Olympique de Marseille", "Marseille", "France", "Ligue 1"),
    ("AS Monaco", "Monaco", "France", "Ligue 1"),
)

#: (city, state, zip-prefix, county) facts for the hospital-style dataset —
#: the schema family used throughout the data-cleaning literature
#: (HoloClean, Holistic cleaning) as an address/provider table.
HOSPITAL_LOCATIONS: tuple[tuple[str, str, str, str], ...] = (
    ("Birmingham", "AL", "352", "Jefferson"),
    ("Huntsville", "AL", "358", "Madison"),
    ("Mobile", "AL", "366", "Mobile"),
    ("Montgomery", "AL", "361", "Montgomery"),
    ("Phoenix", "AZ", "850", "Maricopa"),
    ("Tucson", "AZ", "857", "Pima"),
    ("Los Angeles", "CA", "900", "Los Angeles"),
    ("San Diego", "CA", "921", "San Diego"),
    ("San Francisco", "CA", "941", "San Francisco"),
    ("Sacramento", "CA", "958", "Sacramento"),
    ("Denver", "CO", "802", "Denver"),
    ("Miami", "FL", "331", "Miami-Dade"),
    ("Orlando", "FL", "328", "Orange"),
    ("Atlanta", "GA", "303", "Fulton"),
    ("Chicago", "IL", "606", "Cook"),
    ("Boston", "MA", "021", "Suffolk"),
    ("Detroit", "MI", "482", "Wayne"),
    ("Minneapolis", "MN", "554", "Hennepin"),
    ("New York", "NY", "100", "New York"),
    ("Buffalo", "NY", "142", "Erie"),
    ("Cleveland", "OH", "441", "Cuyahoga"),
    ("Columbus", "OH", "432", "Franklin"),
    ("Portland", "OR", "972", "Multnomah"),
    ("Philadelphia", "PA", "191", "Philadelphia"),
    ("Houston", "TX", "770", "Harris"),
    ("Dallas", "TX", "752", "Dallas"),
    ("Austin", "TX", "787", "787 Travis".split()[1]),
    ("Seattle", "WA", "981", "King"),
)

#: Hospital measure codes and their descriptive names (measure code → name is
#: a functional dependency the constraints exploit).
HOSPITAL_MEASURES: tuple[tuple[str, str], ...] = (
    ("AMI-1", "Aspirin at arrival"),
    ("AMI-2", "Aspirin at discharge"),
    ("AMI-3", "ACE inhibitor for LVSD"),
    ("AMI-4", "Adult smoking cessation advice"),
    ("AMI-5", "Beta blocker at discharge"),
    ("HF-1", "Discharge instructions"),
    ("HF-2", "Evaluation of LVS function"),
    ("HF-3", "ACE inhibitor for LVSD HF"),
    ("PN-2", "Pneumococcal vaccination"),
    ("PN-3B", "Blood culture before antibiotic"),
    ("PN-4", "Smoking cessation advice PN"),
    ("PN-5C", "Initial antibiotic timing"),
    ("SCIP-1", "Prophylactic antibiotic 1 hour"),
    ("SCIP-2", "Prophylactic antibiotic selection"),
)

#: (airline, flight-number prefix, origin, destination, scheduled departure)
#: tuples for the flights dataset family.
FLIGHT_ROUTES: tuple[tuple[str, str, str, str, str], ...] = (
    ("AA", "AA-1021", "JFK", "LAX", "08:30"),
    ("AA", "AA-1187", "DFW", "ORD", "10:05"),
    ("AA", "AA-1302", "MIA", "JFK", "14:45"),
    ("UA", "UA-414", "SFO", "ORD", "07:15"),
    ("UA", "UA-522", "ORD", "EWR", "11:20"),
    ("UA", "UA-689", "DEN", "SFO", "16:40"),
    ("DL", "DL-202", "ATL", "LGA", "06:55"),
    ("DL", "DL-315", "MSP", "SEA", "09:10"),
    ("DL", "DL-447", "DTW", "ATL", "13:25"),
    ("WN", "WN-118", "DAL", "HOU", "07:45"),
    ("WN", "WN-233", "MDW", "BWI", "12:35"),
    ("B6", "B6-915", "BOS", "FLL", "15:05"),
    ("B6", "B6-624", "JFK", "SFO", "17:50"),
    ("AS", "AS-331", "SEA", "ANC", "08:05"),
    ("AS", "AS-480", "PDX", "LAX", "19:30"),
)

#: (state, tax-rate percentage, has-local-surcharge) facts for the tax dataset
#: family (single-tuple constraints: rate is functionally determined by state).
TAX_BRACKETS: tuple[tuple[str, float, str], ...] = (
    ("AL", 5.00, "yes"),
    ("AZ", 4.50, "no"),
    ("CA", 9.30, "yes"),
    ("CO", 4.63, "no"),
    ("FL", 0.00, "no"),
    ("GA", 5.75, "yes"),
    ("IL", 4.95, "no"),
    ("MA", 5.00, "no"),
    ("MI", 4.25, "yes"),
    ("MN", 7.05, "no"),
    ("NY", 6.85, "yes"),
    ("OH", 4.80, "yes"),
    ("OR", 9.00, "no"),
    ("PA", 3.07, "yes"),
    ("TX", 0.00, "no"),
    ("WA", 0.00, "no"),
)

#: First names / last names used for person-like attributes.
FIRST_NAMES = (
    "Alice", "Ben", "Carla", "Daniel", "Elena", "Farid", "Grace", "Hiro",
    "Ines", "Jonas", "Kira", "Liam", "Maya", "Noah", "Olga", "Pavel",
    "Quinn", "Rosa", "Samir", "Tara", "Uri", "Vera", "Wen", "Yara", "Zane",
)
LAST_NAMES = (
    "Adams", "Brown", "Chen", "Diaz", "Evans", "Fischer", "Garcia", "Haddad",
    "Ivanov", "Johnson", "Kim", "Lopez", "Miller", "Nakamura", "Okafor",
    "Patel", "Quintero", "Rossi", "Schmidt", "Tanaka", "Ueda", "Vargas",
    "Weber", "Xu", "Young", "Zhang",
)


@dataclass(frozen=True)
class ZipfSampler:
    """Skewed categorical sampler.

    Real dirty tables are rarely uniform: a handful of cities, measures or
    routes dominate.  The generators therefore draw reference facts with a
    Zipf-like weighting so the conditional statistics the repair algorithms
    learn are realistically skewed.

    Parameters
    ----------
    n_items:
        Size of the pool to sample indexes from.
    exponent:
        Zipf exponent; ``0`` degenerates to uniform sampling.
    """

    n_items: int
    exponent: float = 1.0

    def weights(self) -> np.ndarray:
        ranks = np.arange(1, self.n_items + 1, dtype=float)
        raw = ranks ** (-self.exponent) if self.exponent > 0 else np.ones_like(ranks)
        return raw / raw.sum()

    def sample_indexes(self, size: int, rng=None) -> np.ndarray:
        rng = make_rng(rng)
        return rng.choice(self.n_items, size=size, p=self.weights())


def sample_from_pool(pool: Sequence[Any], size: int, rng=None, exponent: float = 1.0) -> list[Any]:
    """Draw ``size`` items (with replacement, Zipf-skewed) from ``pool``."""
    sampler = ZipfSampler(n_items=len(pool), exponent=exponent)
    indexes = sampler.sample_indexes(size, rng=rng)
    return [pool[int(i)] for i in indexes]


def empirical_distribution(values: Sequence[Any]) -> Mapping[Any, float]:
    """Normalised value frequencies of a sequence (nulls excluded)."""
    counts: dict[Any, int] = {}
    for value in values:
        if value is None:
            continue
        counts[value] = counts.get(value, 0) + 1
    total = sum(counts.values())
    if total == 0:
        return {}
    return {value: count / total for value, count in counts.items()}
