"""Table schemas.

A schema is an ordered list of named attributes, optionally typed.  Types are
advisory — the storage layer holds arbitrary Python values — but they let the
dataset generators, the CSV reader and the HoloClean-style repairer make
sensible decisions (e.g. outlier detection only applies to numeric columns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import SchemaError, UnknownAttributeError

#: Advisory attribute types.
STRING = "string"
INTEGER = "integer"
FLOAT = "float"

_VALID_TYPES = (STRING, INTEGER, FLOAT)


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute of a schema.

    Parameters
    ----------
    name:
        Attribute name, unique within the schema.
    dtype:
        One of ``"string"``, ``"integer"``, ``"float"``.
    categorical:
        Whether the attribute draws from a small discrete domain.  Repair
        algorithms only propose candidate values for categorical attributes.
    """

    name: str
    dtype: str = STRING
    categorical: bool = True

    def __post_init__(self):
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.dtype not in _VALID_TYPES:
            raise SchemaError(
                f"invalid dtype {self.dtype!r} for attribute {self.name!r}; "
                f"expected one of {_VALID_TYPES}"
            )

    def coerce(self, raw: Any) -> Any:
        """Coerce a raw (string) value to the attribute's type, keeping nulls."""
        if raw is None or raw == "":
            return None
        if self.dtype == INTEGER:
            try:
                return int(raw)
            except (TypeError, ValueError):
                return raw
        if self.dtype == FLOAT:
            try:
                return float(raw)
            except (TypeError, ValueError):
                return raw
        return str(raw) if not isinstance(raw, str) else raw


class Schema:
    """Ordered collection of :class:`AttributeSpec`."""

    def __init__(self, attributes: Iterable[AttributeSpec | str]):
        specs: list[AttributeSpec] = []
        for attribute in attributes:
            if isinstance(attribute, AttributeSpec):
                specs.append(attribute)
            else:
                specs.append(AttributeSpec(name=str(attribute)))
        names = [spec.name for spec in specs]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        if not specs:
            raise SchemaError("a schema needs at least one attribute")
        self._specs = tuple(specs)
        self._by_name = {spec.name: spec for spec in specs}

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self._specs)

    @property
    def specs(self) -> tuple[AttributeSpec, ...]:
        return self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[AttributeSpec]:
        return iter(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> AttributeSpec:
        if name not in self._by_name:
            raise UnknownAttributeError(name, self.attribute_names)
        return self._by_name[name]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._specs == other._specs

    def __hash__(self) -> int:
        return hash(self._specs)

    def index_of(self, name: str) -> int:
        """Ordinal position of an attribute in the schema."""
        if name not in self._by_name:
            raise UnknownAttributeError(name, self.attribute_names)
        return self.attribute_names.index(name)

    def categorical_attributes(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self._specs if spec.categorical)

    def numeric_attributes(self) -> tuple[str, ...]:
        return tuple(
            spec.name for spec in self._specs if spec.dtype in (INTEGER, FLOAT)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        parts = ", ".join(f"{s.name}:{s.dtype}" for s in self._specs)
        return f"Schema({parts})"
