"""CSV and record-based table input / output.

The original demo loads tables through a web upload backed by PostgreSQL.
Here the equivalent entry points are plain CSV files and lists of dicts, so
the examples and the benchmark harness can persist intermediate tables.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.dataset.schema import AttributeSpec, Schema
from repro.dataset.table import Table
from repro.engine.storage import is_null
from repro.errors import SchemaError


def table_from_records(records: Sequence[Mapping[str, Any]], schema: Schema | None = None,
                       name: str = "T") -> Table:
    """Build a :class:`Table` from a list of dictionaries.

    When ``schema`` is omitted it is inferred from the keys of the first
    record; every record must then carry exactly those keys.
    """
    if not records:
        raise SchemaError("cannot infer a table from an empty record list")
    if schema is None:
        schema = Schema(list(records[0].keys()))
    rows = []
    for record in records:
        missing = [a for a in schema.attribute_names if a not in record]
        if missing:
            raise SchemaError(f"record {record!r} is missing attributes {missing}")
        rows.append([record[a] for a in schema.attribute_names])
    return Table(schema, rows, name=name)


def read_csv(path: str | Path, schema: Schema | None = None, name: str | None = None) -> Table:
    """Read a CSV file (header row required) into a :class:`Table`.

    Values are coerced using the schema's attribute types when a schema is
    provided; otherwise everything stays a string and empty strings become
    nulls.
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise SchemaError(f"CSV file {path} is empty") from exc
        if schema is None:
            schema = Schema([AttributeSpec(column) for column in header])
        elif list(schema.attribute_names) != list(header):
            raise SchemaError(
                f"CSV header {header} does not match schema {list(schema.attribute_names)}"
            )
        rows = []
        for raw_row in reader:
            if len(raw_row) != len(header):
                raise SchemaError(
                    f"CSV row {raw_row!r} has {len(raw_row)} values, expected {len(header)}"
                )
            rows.append([schema[column].coerce(value) for column, value in zip(header, raw_row)])
    return Table(schema, rows, name=name or path.stem)


def write_csv(table: Table, path: str | Path) -> Path:
    """Write a table to CSV (nulls become empty strings). Returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.attributes)
        for row_id in range(table.n_rows):
            writer.writerow(
                ["" if is_null(value) else value for value in table.row_tuple(row_id)]
            )
    return path


def tables_equal_on_disk(path_a: str | Path, path_b: str | Path) -> bool:
    """Convenience check used by round-trip tests."""
    return read_csv(path_a).equals(read_csv(path_b))
