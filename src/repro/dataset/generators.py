"""Synthetic dataset generators.

Each generator produces a *clean* table whose attribute correlations match a
well-known data-cleaning benchmark family, together with the denial
constraints that hold on it.  Combined with
:class:`repro.dataset.errors.ErrorInjector` they replace the Wikipedia scrape
used in the original demo (see DESIGN.md, substitution S13) and let the
benchmark harness scale table sizes arbitrarily.

Generators
----------
* :class:`SoccerLeagueGenerator` — league standings (the paper's domain):
  Team → City, City → Country, League → Country, plus the "no two teams share
  a place in the same league and year" constraint (C1–C4 of Figure 1).
* :class:`HospitalGenerator` — provider/measure table (HoloClean's benchmark
  family): City → State/Zip/County FDs and MeasureCode → MeasureName.
* :class:`FlightsGenerator` — flight schedule table: Flight → Origin /
  Destination / ScheduledDeparture FDs.
* :class:`TaxGenerator` — salary/tax records with a single-tuple style rule
  (State determines Rate and surcharge flag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.config import make_rng
from repro.dataset import distributions as pools
from repro.dataset.schema import AttributeSpec, Schema, FLOAT, INTEGER, STRING
from repro.dataset.table import Table
from repro.errors import TRexError


@dataclass
class GeneratedDataset:
    """A clean table plus the textual DCs that hold on it."""

    table: Table
    constraint_texts: tuple[str, ...]

    def constraints(self):
        """Parse and return the denial constraints (lazy import avoids cycles)."""
        from repro.constraints.parser import parse_dc

        return [parse_dc(text, name=f"C{i + 1}") for i, text in enumerate(self.constraint_texts)]


class _BaseGenerator:
    """Shared plumbing: seeded RNG + size validation."""

    def __init__(self, seed=None):
        self._rng = make_rng(seed)

    @staticmethod
    def _check_rows(n_rows: int) -> None:
        if n_rows <= 0:
            raise TRexError(f"n_rows must be positive, got {n_rows}")


class SoccerLeagueGenerator(_BaseGenerator):
    """League-standings tables with the schema of the paper's Figure 2."""

    SCHEMA = Schema(
        [
            AttributeSpec("Team", STRING),
            AttributeSpec("City", STRING),
            AttributeSpec("Country", STRING),
            AttributeSpec("League", STRING),
            AttributeSpec("Year", INTEGER),
            AttributeSpec("Place", INTEGER),
        ]
    )

    CONSTRAINT_TEXTS = (
        "not(t1.Team == t2.Team and t1.City != t2.City)",
        "not(t1.City == t2.City and t1.Country != t2.Country)",
        "not(t1.League == t2.League and t1.Country != t2.Country)",
        "not(t1.Team != t2.Team and t1.Year == t2.Year and t1.League == t2.League and t1.Place == t2.Place)",
    )

    def __init__(self, seed=None, years: Sequence[int] = (2017, 2018, 2019), skew: float = 0.6):
        super().__init__(seed)
        self.years = tuple(years)
        self.skew = skew

    def generate(self, n_rows: int = 30) -> GeneratedDataset:
        """Generate ``n_rows`` standings rows.

        Rows are (team, year) observations; within a (league, year) group the
        places are a permutation of ``1..k``, which keeps constraint C4
        satisfied on the clean table.
        """
        self._check_rows(n_rows)
        rows: list[list] = []
        team_indexes = pools.sample_from_pool(
            list(range(len(pools.SOCCER_TEAMS))), n_rows, rng=self._rng, exponent=self.skew
        )
        # Track used (league, year, place) and (team, year) combinations so the
        # clean table satisfies C4 and has at most one observation per team-year.
        next_place: dict[tuple[str, int], int] = {}
        seen_team_year: set[tuple[str, int]] = set()
        for index in team_indexes:
            team, city, country, league = pools.SOCCER_TEAMS[index]
            year = int(self.years[int(self._rng.integers(0, len(self.years)))])
            if (team, year) in seen_team_year:
                # pick the first free year for this team, or skip if exhausted
                free_years = [y for y in self.years if (team, y) not in seen_team_year]
                if not free_years:
                    continue
                year = int(free_years[0])
            seen_team_year.add((team, year))
            place = next_place.get((league, year), 0) + 1
            next_place[(league, year)] = place
            rows.append([team, city, country, league, year, place])
        if not rows:
            raise TRexError("generator produced no rows; increase n_rows or years")
        table = Table(self.SCHEMA, rows, name="soccer")
        return GeneratedDataset(table=table, constraint_texts=self.CONSTRAINT_TEXTS)


class HospitalGenerator(_BaseGenerator):
    """Hospital provider/measure tables (HoloClean's canonical benchmark)."""

    SCHEMA = Schema(
        [
            AttributeSpec("ProviderNumber", STRING),
            AttributeSpec("HospitalName", STRING),
            AttributeSpec("City", STRING),
            AttributeSpec("State", STRING),
            AttributeSpec("ZipCode", STRING),
            AttributeSpec("County", STRING),
            AttributeSpec("MeasureCode", STRING),
            AttributeSpec("MeasureName", STRING),
        ]
    )

    CONSTRAINT_TEXTS = (
        "not(t1.City == t2.City and t1.State != t2.State)",
        "not(t1.City == t2.City and t1.County != t2.County)",
        "not(t1.ZipCode == t2.ZipCode and t1.City != t2.City)",
        "not(t1.MeasureCode == t2.MeasureCode and t1.MeasureName != t2.MeasureName)",
        "not(t1.ProviderNumber == t2.ProviderNumber and t1.HospitalName != t2.HospitalName)",
    )

    def generate(self, n_rows: int = 60) -> GeneratedDataset:
        self._check_rows(n_rows)
        rows: list[list] = []
        location_indexes = pools.sample_from_pool(
            list(range(len(pools.HOSPITAL_LOCATIONS))), n_rows, rng=self._rng, exponent=0.8
        )
        measure_indexes = pools.sample_from_pool(
            list(range(len(pools.HOSPITAL_MEASURES))), n_rows, rng=self._rng, exponent=0.5
        )
        for row_id, (loc_index, measure_index) in enumerate(zip(location_indexes, measure_indexes)):
            city, state, zip_prefix, county = pools.HOSPITAL_LOCATIONS[loc_index]
            code, name = pools.HOSPITAL_MEASURES[measure_index]
            provider_number = f"P{loc_index:03d}"
            hospital_name = f"{city} General Hospital"
            zip_code = f"{zip_prefix}{loc_index % 10}{row_id % 10}"
            # ZipCode -> City must hold on the clean table, so derive the zip
            # deterministically from the location only.
            zip_code = f"{zip_prefix}{loc_index % 100:02d}"
            rows.append(
                [provider_number, hospital_name, city, state, zip_code, county, code, name]
            )
        table = Table(self.SCHEMA, rows, name="hospital")
        return GeneratedDataset(table=table, constraint_texts=self.CONSTRAINT_TEXTS)


class FlightsGenerator(_BaseGenerator):
    """Flight-schedule tables: the Flights benchmark family."""

    SCHEMA = Schema(
        [
            AttributeSpec("Airline", STRING),
            AttributeSpec("Flight", STRING),
            AttributeSpec("Origin", STRING),
            AttributeSpec("Destination", STRING),
            AttributeSpec("ScheduledDeparture", STRING),
            AttributeSpec("Day", STRING),
        ]
    )

    CONSTRAINT_TEXTS = (
        "not(t1.Flight == t2.Flight and t1.Origin != t2.Origin)",
        "not(t1.Flight == t2.Flight and t1.Destination != t2.Destination)",
        "not(t1.Flight == t2.Flight and t1.ScheduledDeparture != t2.ScheduledDeparture)",
        "not(t1.Flight == t2.Flight and t1.Airline != t2.Airline)",
    )

    DAYS = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")

    def generate(self, n_rows: int = 50) -> GeneratedDataset:
        self._check_rows(n_rows)
        rows: list[list] = []
        route_indexes = pools.sample_from_pool(
            list(range(len(pools.FLIGHT_ROUTES))), n_rows, rng=self._rng, exponent=0.7
        )
        for route_index in route_indexes:
            airline, flight, origin, destination, departure = pools.FLIGHT_ROUTES[route_index]
            day = self.DAYS[int(self._rng.integers(0, len(self.DAYS)))]
            rows.append([airline, flight, origin, destination, departure, day])
        table = Table(self.SCHEMA, rows, name="flights")
        return GeneratedDataset(table=table, constraint_texts=self.CONSTRAINT_TEXTS)


class TaxGenerator(_BaseGenerator):
    """Salary/tax records with state-determined rate attributes."""

    SCHEMA = Schema(
        [
            AttributeSpec("FirstName", STRING),
            AttributeSpec("LastName", STRING),
            AttributeSpec("State", STRING),
            AttributeSpec("Rate", FLOAT),
            AttributeSpec("LocalSurcharge", STRING),
            AttributeSpec("Salary", INTEGER, categorical=False),
        ]
    )

    CONSTRAINT_TEXTS = (
        "not(t1.State == t2.State and t1.Rate != t2.Rate)",
        "not(t1.State == t2.State and t1.LocalSurcharge != t2.LocalSurcharge)",
    )

    def generate(self, n_rows: int = 80) -> GeneratedDataset:
        self._check_rows(n_rows)
        rows: list[list] = []
        bracket_indexes = pools.sample_from_pool(
            list(range(len(pools.TAX_BRACKETS))), n_rows, rng=self._rng, exponent=0.6
        )
        for bracket_index in bracket_indexes:
            state, rate, surcharge = pools.TAX_BRACKETS[bracket_index]
            first = pools.FIRST_NAMES[int(self._rng.integers(0, len(pools.FIRST_NAMES)))]
            last = pools.LAST_NAMES[int(self._rng.integers(0, len(pools.LAST_NAMES)))]
            salary = int(self._rng.integers(30, 200)) * 1000
            rows.append([first, last, state, rate, surcharge, salary])
        table = Table(self.SCHEMA, rows, name="tax")
        return GeneratedDataset(table=table, constraint_texts=self.CONSTRAINT_TEXTS)
