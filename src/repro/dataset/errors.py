"""Error injection.

The demo scenario (Section 4 of the paper) starts from a clean table into
which "errors will be manually added".  :class:`ErrorInjector` automates that
step so experiments are repeatable: given a clean table it produces a dirty
table plus a ground-truth record of every injected error, which the
integration tests and the benchmark harness use to score repairs.

Supported error types mirror the ones data-cleaning papers inject:

* ``typo``        — perturb a string value (character swap / duplication),
* ``swap``        — replace a value with a different value from the same column,
* ``domain``      — replace a value with an out-of-domain token (e.g. the
                    "Capital" / "España" style errors of Figure 2a),
* ``null``        — blank the cell,
* ``numeric``     — perturb a numeric value by a random offset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.config import make_rng
from repro.dataset.table import CellChange, CellRef, RepairDelta, Table
from repro.engine.storage import is_null
from repro.errors import TRexError

_ERROR_TYPES = ("typo", "swap", "domain", "null", "numeric")

#: Out-of-domain replacement tokens used by ``domain`` errors, in the spirit
#: of the paper's "Capital" (for Madrid) and "España" (for Spain) examples.
_DOMAIN_TOKENS = ("Unknown", "N/A", "Capital", "España", "???", "TBD", "Missing")


@dataclass(frozen=True)
class ErrorSpec:
    """Configuration of one error-injection pass.

    Parameters
    ----------
    rate:
        Fraction of cells (of the eligible attributes) to corrupt.
    error_types:
        The error types to draw from, uniformly.
    attributes:
        Attributes eligible for corruption; ``None`` means all attributes.
    """

    rate: float = 0.05
    error_types: tuple[str, ...] = ("typo", "swap", "domain")
    attributes: tuple[str, ...] | None = None

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise TRexError(f"error rate must be in [0, 1], got {self.rate}")
        unknown = [t for t in self.error_types if t not in _ERROR_TYPES]
        if unknown:
            raise TRexError(f"unknown error types {unknown}; expected subset of {_ERROR_TYPES}")
        if not self.error_types:
            raise TRexError("at least one error type is required")


@dataclass
class InjectionReport:
    """Ground truth produced by an injection pass."""

    injected: list[CellChange] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.injected)

    def cells(self) -> list[CellRef]:
        return [change.cell for change in self.injected]

    def as_delta(self) -> RepairDelta:
        """The injected errors as a dirty → clean delta (new value = clean value)."""
        return RepairDelta(
            CellChange(change.cell, change.new_value, change.old_value)
            for change in self.injected
        )

    def truth(self) -> dict[CellRef, Any]:
        """Mapping from corrupted cell to its original (correct) value."""
        return {change.cell: change.old_value for change in self.injected}


class ErrorInjector:
    """Injects synthetic errors into a clean table."""

    def __init__(self, spec: ErrorSpec | None = None, seed=None):
        self.spec = spec or ErrorSpec()
        self._rng = make_rng(seed)

    # -- single-error primitives -------------------------------------------------

    def _typo(self, value: Any) -> Any:
        text = str(value)
        if len(text) < 2:
            return text + "x"
        position = int(self._rng.integers(0, len(text) - 1))
        chars = list(text)
        chars[position], chars[position + 1] = chars[position + 1], chars[position]
        corrupted = "".join(chars)
        if corrupted == text:
            corrupted = text + text[-1]
        return corrupted

    def _swap(self, table: Table, cell: CellRef) -> Any:
        column_values = [v for v in table.column(cell.attribute) if not is_null(v)]
        alternatives = sorted({v for v in column_values if v != table[cell]}, key=repr)
        if not alternatives:
            return self._typo(table[cell])
        return alternatives[int(self._rng.integers(0, len(alternatives)))]

    def _domain(self, value: Any) -> Any:
        candidates = [token for token in _DOMAIN_TOKENS if token != value]
        return candidates[int(self._rng.integers(0, len(candidates)))]

    def _numeric(self, value: Any) -> Any:
        try:
            numeric = float(value)
        except (TypeError, ValueError):
            return self._typo(value)
        offset = int(self._rng.integers(1, 10))
        corrupted = numeric + offset
        if isinstance(value, int) or float(value).is_integer():
            return int(corrupted)
        return corrupted

    def _corrupt(self, table: Table, cell: CellRef, error_type: str) -> Any:
        value = table[cell]
        if error_type == "null":
            return None
        if error_type == "typo":
            return self._typo(value)
        if error_type == "swap":
            return self._swap(table, cell)
        if error_type == "domain":
            return self._domain(value)
        if error_type == "numeric":
            return self._numeric(value)
        raise TRexError(f"unknown error type {error_type!r}")

    # -- public API -----------------------------------------------------------------

    def eligible_cells(self, table: Table) -> list[CellRef]:
        attributes = self.spec.attributes or table.attributes
        return [
            cell
            for cell in table.cells()
            if cell.attribute in attributes and not is_null(table[cell])
        ]

    def inject(self, clean: Table, n_errors: int | None = None) -> tuple[Table, InjectionReport]:
        """Return ``(dirty_table, report)``.

        ``n_errors`` overrides the rate-based error count; each corrupted cell
        receives exactly one error and the corrupted value always differs from
        the original.
        """
        eligible = self.eligible_cells(clean)
        if not eligible:
            return clean.copy(name=f"{clean.name}_dirty"), InjectionReport()
        if n_errors is None:
            n_errors = max(1, round(self.spec.rate * len(eligible))) if self.spec.rate > 0 else 0
        n_errors = min(n_errors, len(eligible))
        chosen_indexes = self._rng.choice(len(eligible), size=n_errors, replace=False)
        dirty = clean.copy(name=f"{clean.name}_dirty")
        report = InjectionReport()
        for index in sorted(int(i) for i in chosen_indexes):
            cell = eligible[index]
            error_type = self.spec.error_types[
                int(self._rng.integers(0, len(self.spec.error_types)))
            ]
            original = clean[cell]
            corrupted = self._corrupt(clean, cell, error_type)
            if corrupted == original:
                corrupted = None if error_type != "null" else corrupted
            dirty.set_value(cell.row, cell.attribute, corrupted)
            report.injected.append(CellChange(cell, original, corrupted))
        return dirty, report


def inject_errors(
    clean: Table,
    rate: float = 0.05,
    error_types: Iterable[str] = ("typo", "swap", "domain"),
    attributes: Sequence[str] | None = None,
    seed=None,
    n_errors: int | None = None,
) -> tuple[Table, InjectionReport]:
    """Functional convenience wrapper around :class:`ErrorInjector`."""
    spec = ErrorSpec(
        rate=rate,
        error_types=tuple(error_types),
        attributes=tuple(attributes) if attributes is not None else None,
    )
    return ErrorInjector(spec, seed=seed).inject(clean, n_errors=n_errors)
