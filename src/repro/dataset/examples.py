"""The paper's running example: the La Liga standings table of Figure 2.

The paper's Figure 2a shows a six-row soccer standings table with two dirty
cells in tuple ``t5`` — ``t5[City] = "Capital"`` (should be ``"Madrid"``) and
``t5[Country] = "España"`` (should be ``"Spain"``) — and Figure 2b the
repaired table.  The figure itself is an image, so the cell values below are
reconstructed to satisfy every fact the text states about them:

* C1/C2/C3/C4 are the DCs of Figure 1;
* ``t3`` and ``t6`` carry Team = "Real Madrid" so that changing ``t6[City]``
  would create a C1 violation with ``t3`` (Example 1.1);
* the League value "La Liga" appears in tuples ``t1, t2, t3, t6`` coupled with
  Country = "Spain" (Example 2.4 uses exactly the pairs
  ``{t_i[Country], t_i[League]}`` for ``i ∈ {1, 2, 3, 6}``);
* the clean table satisfies all four DCs and the dirty table violates
  C1 (via ``t5[City]``), C2 (indirectly, once the city is fixed) and C3
  (via ``t5[Country]``), but never C4;
* Algorithm 1 with all four DCs repairs ``t5[City] → "Madrid"`` and
  ``t5[Country] → "Spain"`` and yields the DC Shapley values reported in
  Figure 1 (1/6, 1/6, 2/3, 0), which the test-suite checks exactly.
"""

from __future__ import annotations

from repro.dataset.schema import AttributeSpec, Schema, INTEGER, STRING
from repro.dataset.table import CellRef, Table

#: Schema of the Figure 2 table.
LA_LIGA_SCHEMA = Schema(
    [
        AttributeSpec("Team", STRING),
        AttributeSpec("City", STRING),
        AttributeSpec("Country", STRING),
        AttributeSpec("League", STRING),
        AttributeSpec("Year", INTEGER),
        AttributeSpec("Place", INTEGER),
    ]
)

_CLEAN_ROWS = [
    ["FC Barcelona", "Barcelona", "Spain", "La Liga", 2019, 1],
    ["Atletico Madrid", "Madrid", "Spain", "La Liga", 2019, 3],
    ["Real Madrid", "Madrid", "Spain", "La Liga", 2019, 2],
    ["Liverpool", "Liverpool", "England", "Premier League", 2019, 1],
    ["Real Madrid", "Madrid", "Spain", "La Liga", 2018, 1],
    ["Real Madrid", "Madrid", "Spain", "La Liga", 2017, 1],
]

_DIRTY_ROWS = [
    ["FC Barcelona", "Barcelona", "Spain", "La Liga", 2019, 1],
    ["Atletico Madrid", "Madrid", "Spain", "La Liga", 2019, 3],
    ["Real Madrid", "Madrid", "Spain", "La Liga", 2019, 2],
    ["Liverpool", "Liverpool", "England", "Premier League", 2019, 1],
    ["Real Madrid", "Capital", "España", "La Liga", 2018, 1],
    ["Real Madrid", "Madrid", "Spain", "La Liga", 2017, 1],
]

#: The dirty cells of Figure 2a (red cells) and their clean values.
LA_LIGA_DIRTY_CELLS = {
    CellRef(4, "City"): ("Capital", "Madrid"),
    CellRef(4, "Country"): ("España", "Spain"),
}

#: The cell of interest used throughout the paper's examples: t5[Country].
CELL_OF_INTEREST = CellRef(4, "Country")

#: Textual form of the four DCs of Figure 1, in ASCII syntax understood by
#: :func:`repro.constraints.parser.parse_dc`.
LA_LIGA_CONSTRAINT_TEXTS = (
    "not(t1.Team == t2.Team and t1.City != t2.City)",
    "not(t1.City == t2.City and t1.Country != t2.Country)",
    "not(t1.League == t2.League and t1.Country != t2.Country)",
    "not(t1.Team != t2.Team and t1.Year == t2.Year and t1.League == t2.League and t1.Place == t2.Place)",
)

#: DC Shapley values reported in Figure 1 for the repair of t5[Country].
FIGURE1_SHAPLEY_VALUES = {
    "C1": 1.0 / 6.0,
    "C2": 1.0 / 6.0,
    "C3": 2.0 / 3.0,
    "C4": 0.0,
}


def la_liga_clean_table() -> Table:
    """The clean standings table of Figure 2b."""
    return Table(LA_LIGA_SCHEMA, [list(row) for row in _CLEAN_ROWS], name="la_liga_clean")


def la_liga_dirty_table() -> Table:
    """The dirty standings table of Figure 2a (red cells in ``t5``)."""
    return Table(LA_LIGA_SCHEMA, [list(row) for row in _DIRTY_ROWS], name="la_liga_dirty")


def la_liga_constraints():
    """The four denial constraints of Figure 1 as parsed objects C1–C4."""
    from repro.constraints.parser import parse_dc

    return [
        parse_dc(text, name=f"C{index + 1}")
        for index, text in enumerate(LA_LIGA_CONSTRAINT_TEXTS)
    ]
