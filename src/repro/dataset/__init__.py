"""Table data model, datasets and error injection.

The paper works over a single relational table ``T`` with schema
``(A_1, ..., A_m)``; ``T^d`` denotes the dirty table and ``T^c`` the repaired
one.  This subpackage provides:

* :class:`~repro.dataset.table.Table` / :class:`~repro.dataset.table.CellRef`
  — the cell-addressable table model used across the library,
* :class:`~repro.dataset.table.RepairDelta` — the diff between a dirty and a
  clean table,
* CSV round-tripping (:mod:`~repro.dataset.io`),
* the paper's running example — the La Liga standings table of Figure 2a —
  (:mod:`~repro.dataset.examples`), and
* synthetic dataset generators with configurable error injection
  (:mod:`~repro.dataset.generators`, :mod:`~repro.dataset.errors`) standing in
  for the Wikipedia scrape used in the original demo.
"""

from repro.dataset.schema import AttributeSpec, Schema
from repro.dataset.table import CellRef, PerturbationView, RepairDelta, Table
from repro.dataset.io import read_csv, write_csv, table_from_records
from repro.dataset.examples import (
    la_liga_clean_table,
    la_liga_dirty_table,
    la_liga_constraints,
)
from repro.dataset.generators import (
    SoccerLeagueGenerator,
    HospitalGenerator,
    FlightsGenerator,
    TaxGenerator,
)
from repro.dataset.errors import ErrorInjector, ErrorSpec, InjectionReport

__all__ = [
    "AttributeSpec",
    "Schema",
    "CellRef",
    "PerturbationView",
    "RepairDelta",
    "Table",
    "read_csv",
    "write_csv",
    "table_from_records",
    "la_liga_clean_table",
    "la_liga_dirty_table",
    "la_liga_constraints",
    "SoccerLeagueGenerator",
    "HospitalGenerator",
    "FlightsGenerator",
    "TaxGenerator",
    "ErrorInjector",
    "ErrorSpec",
    "InjectionReport",
]
